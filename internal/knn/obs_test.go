package knn

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// TestObsSearchCounters verifies the traversal accounting: a tree search
// publishes its Stats and heap tallies into the registry, attributed to the
// right substrate, and publishes nothing while the gate is off.
func TestObsSearchCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(99))
	items := randItems(rng, 4, 800, 2)
	idx := index(items, 4)
	q := randQuery(rng, 4, 1)

	const searches = 5
	before := obs.Snapshot()
	var res Result
	for i := 0; i < searches; i++ {
		res = Search(idx, q, 10, dominance.Hyperbola{}, HS)
	}
	diff := obs.Snapshot().Diff(before)

	if got := diff.Get("knn.searches"); got != searches {
		t.Errorf("knn.searches = %d, want %d", got, searches)
	}
	if got := diff.Get("knn.searches.sstree"); got != searches {
		t.Errorf("knn.searches.sstree = %d, want %d", got, searches)
	}
	// The last search's Stats are a lower bound on the accumulated totals.
	if got := diff.Get("knn.nodes_visited"); got < uint64(res.Stats.NodesVisited) {
		t.Errorf("knn.nodes_visited = %d, below one search's %d", got, res.Stats.NodesVisited)
	}
	if got := diff.Get("knn.items_scanned"); got < uint64(res.Stats.Items) {
		t.Errorf("knn.items_scanned = %d, below one search's %d", got, res.Stats.Items)
	}
	if got := diff.Get("knn.dom_checks"); got < uint64(res.Stats.DomChecks) {
		t.Errorf("knn.dom_checks = %d, below one search's %d", got, res.Stats.DomChecks)
	}
	if diff.Get("knn.heap_pushes") == 0 || diff.Get("knn.heap_pops") == 0 {
		t.Errorf("heap tallies did not move: pushes=%d pops=%d",
			diff.Get("knn.heap_pushes"), diff.Get("knn.heap_pops"))
	}

	obs.SetEnabled(false)
	before = obs.Snapshot()
	Search(idx, q, 10, dominance.Hyperbola{}, HS)
	if diff := obs.Snapshot().Diff(before); len(diff) != 0 {
		t.Errorf("counters moved while disabled: %v", diff)
	}
}

// TestObsBruteForceCounters checks the non-tree path publishes too.
func TestObsBruteForceCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 3, 200, 2)
	q := randQuery(rng, 3, 1)

	before := obs.Snapshot()
	res := BruteForce(items, q, 5, dominance.Hyperbola{})
	diff := obs.Snapshot().Diff(before)

	if got := diff.Get("knn.brute_force_searches"); got != 1 {
		t.Errorf("knn.brute_force_searches = %d, want 1", got)
	}
	if got := diff.Get("knn.items_scanned"); got != uint64(res.Stats.Items) {
		t.Errorf("knn.items_scanned = %d, want %d", got, res.Stats.Items)
	}
}
