package knn

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// TestObsSearchCounters verifies the traversal accounting: a tree search
// publishes its Stats and heap tallies into the registry, attributed to the
// right substrate, and publishes nothing while the gate is off. The
// registry is zeroed up front (obs.ResetForTest) so the assertions read
// absolute values instead of diffing snapshots.
func TestObsSearchCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(99))
	items := randItems(rng, 4, 800, 2)
	idx := index(items, 4)
	q := randQuery(rng, 4, 1)

	const searches = 5
	obs.ResetForTest()
	var res Result
	for i := 0; i < searches; i++ {
		res = Search(idx, q, 10, dominance.Hyperbola{}, HS)
	}
	got := obs.Snapshot()

	if got := got.Get("knn.searches"); got != searches {
		t.Errorf("knn.searches = %d, want %d", got, searches)
	}
	if got := got.Get("knn.searches.sstree"); got != searches {
		t.Errorf("knn.searches.sstree = %d, want %d", got, searches)
	}
	// The last search's Stats are a lower bound on the accumulated totals.
	if got := got.Get("knn.nodes_visited"); got < uint64(res.Stats.NodesVisited) {
		t.Errorf("knn.nodes_visited = %d, below one search's %d", got, res.Stats.NodesVisited)
	}
	if got := got.Get("knn.items_scanned"); got < uint64(res.Stats.Items) {
		t.Errorf("knn.items_scanned = %d, below one search's %d", got, res.Stats.Items)
	}
	if got := got.Get("knn.dom_checks"); got < uint64(res.Stats.DomChecks) {
		t.Errorf("knn.dom_checks = %d, below one search's %d", got, res.Stats.DomChecks)
	}
	if got.Get("knn.heap_pushes") == 0 || got.Get("knn.heap_pops") == 0 {
		t.Errorf("heap tallies did not move: pushes=%d pops=%d",
			got.Get("knn.heap_pushes"), got.Get("knn.heap_pops"))
	}

	obs.SetEnabled(false)
	obs.ResetForTest()
	Search(idx, q, 10, dominance.Hyperbola{}, HS)
	if moved := obs.Snapshot().Diff(obs.Snap{}); len(moved) != 0 {
		t.Errorf("counters moved while disabled: %v", moved)
	}
}

// TestObsSearchLatency verifies the per-search latency observability: each
// search records exactly one sample into the histogram instance of its
// (substrate, strategy) pair, and the flight recorder retains the query
// with its labels, k and counter diffs.
func TestObsSearchLatency(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(42))
	items := randItems(rng, 4, 600, 2)
	idx := index(items, 4)
	q := randQuery(rng, 4, 1)

	const searches = 7
	obs.ResetForTest()
	var res Result
	for i := 0; i < searches; i++ {
		res = Search(idx, q, 10, dominance.Hyperbola{}, HS)
	}
	Search(idx, q, 10, dominance.Hyperbola{}, DF)

	merged := obs.MergedHist("knn.search_latency")
	if merged.Count != searches+1 {
		t.Errorf("knn.search_latency holds %d samples, want %d", merged.Count, searches+1)
	}
	if merged.Quantile(0.5) <= 0 {
		t.Error("median search latency is not positive")
	}
	hs := obs.GetOrNewHistogram("knn.search_latency", `substrate="sstree",algo="HS"`).Snap()
	if hs.Count != searches {
		t.Errorf(`sstree/HS instance holds %d samples, want %d`, hs.Count, searches)
	}
	df := obs.GetOrNewHistogram("knn.search_latency", `substrate="sstree",algo="DF"`).Snap()
	if df.Count != 1 {
		t.Errorf(`sstree/DF instance holds %d samples, want 1`, df.Count)
	}

	dump := obs.Flight.Dump()
	if len(dump) != searches+1 {
		t.Fatalf("flight recorder retains %d queries, want %d", len(dump), searches+1)
	}
	for _, r := range dump {
		if r.Substrate != "sstree" {
			t.Errorf("flight record substrate = %q, want sstree", r.Substrate)
		}
		if r.Algo != "HS" && r.Algo != "DF" {
			t.Errorf("flight record algo = %q", r.Algo)
		}
		if r.K != 10 {
			t.Errorf("flight record k = %d, want 10", r.K)
		}
		if r.LatencyNs <= 0 || r.WhenUnixNs <= 0 {
			t.Errorf("flight record timing not positive: %+v", r)
		}
	}
	// HS runs of the same query are deterministic, so some record carries
	// the last run's exact counter diffs.
	var matched bool
	for _, r := range dump {
		if r.Algo == "HS" && r.Nodes == uint64(res.Stats.NodesVisited) &&
			r.Items == uint64(res.Stats.Items) && r.DomChecks == uint64(res.Stats.DomChecks) {
			matched = true
			break
		}
	}
	if !matched {
		t.Errorf("no flight record matches the last search's Stats %+v", res.Stats)
	}

	// Gate off: no latency samples, no flight records.
	obs.SetEnabled(false)
	obs.ResetForTest()
	Search(idx, q, 10, dominance.Hyperbola{}, HS)
	if n := obs.MergedHist("knn.search_latency").Count; n != 0 {
		t.Errorf("search_latency recorded %d samples with the gate off", n)
	}
	if dump := obs.Flight.Dump(); len(dump) != 0 {
		t.Errorf("flight recorder admitted %d queries with the gate off", len(dump))
	}
}

// TestObsBruteForceCounters checks the non-tree path publishes too,
// including its latency histogram instance and flight record.
func TestObsBruteForceCounters(t *testing.T) {
	defer obs.SetEnabled(true)
	obs.SetEnabled(true)

	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 3, 200, 2)
	q := randQuery(rng, 3, 1)

	obs.ResetForTest()
	res := BruteForce(items, q, 5, dominance.Hyperbola{})
	got := obs.Snapshot()

	if got := got.Get("knn.brute_force_searches"); got != 1 {
		t.Errorf("knn.brute_force_searches = %d, want 1", got)
	}
	if got := got.Get("knn.items_scanned"); got != uint64(res.Stats.Items) {
		t.Errorf("knn.items_scanned = %d, want %d", got, res.Stats.Items)
	}
	if n := obs.GetOrNewHistogram("knn.search_latency", `substrate="brute",algo="scan"`).Snap().Count; n != 1 {
		t.Errorf("brute-force latency instance holds %d samples, want 1", n)
	}
	dump := obs.Flight.Dump()
	if len(dump) != 1 || dump[0].Substrate != "brute" || dump[0].Algo != "scan" || dump[0].K != 5 {
		t.Errorf("brute-force flight record wrong: %+v", dump)
	}
}
