package knn

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

func TestSearchBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	items := randItems(rng, 3, 2000, 3)
	idx := index(items, 3)
	queries := make([]geom.Sphere, 40)
	for i := range queries {
		queries[i] = randQuery(rng, 3, 3)
	}
	want := make([]Result, len(queries))
	for i, q := range queries {
		want[i] = Search(idx, q, 5, dominance.Hyperbola{}, HS)
	}
	for _, workers := range []int{0, 1, 3, 64} {
		got := SearchBatch(idx, queries, 5, dominance.Hyperbola{}, HS, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i := range got {
			if !equalIDs(sortedIDs(got[i].Items), sortedIDs(want[i].Items)) {
				t.Fatalf("workers=%d: query %d differs from serial", workers, i)
			}
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	idx := index(randItems(rand.New(rand.NewSource(92)), 2, 50, 1), 2)
	if got := SearchBatch(idx, nil, 3, dominance.Hyperbola{}, DF, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}
