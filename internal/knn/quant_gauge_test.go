package knn

import (
	"testing"

	"hyperdom/internal/obs"
)

// TestQuantModeGauge pins the live hyperdom_quant_mode family (ISSUE 9):
// one-hot across the modes, updated on every SetQuantMode flip — unlike the
// build_info label, which is stamped once at boot.
func TestQuantModeGauge(t *testing.T) {
	orig := QuantModeNow()
	defer SetQuantMode(orig)

	check := func(active QuantMode) {
		t.Helper()
		for _, m := range []QuantMode{QuantNone, QuantF32, QuantI8} {
			v, ok := obs.GaugeValue("quant_mode", `mode="`+m.String()+`"`)
			if !ok {
				t.Fatalf("quant_mode{mode=%q} not registered", m)
			}
			want := 0.0
			if m == active {
				want = 1.0
			}
			if v != want {
				t.Errorf("quant_mode{mode=%q} = %v, want %v (active %v)", m, v, want, active)
			}
		}
	}

	SetQuantMode(QuantI8)
	check(QuantI8)
	if got := QuantModeNow(); got != QuantI8 {
		t.Fatalf("QuantModeNow = %v, want i8", got)
	}
	SetQuantMode(QuantNone)
	check(QuantNone)
	SetQuantMode(QuantF32)
	check(QuantF32)
}
