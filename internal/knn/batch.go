package knn

import (
	"runtime"
	"sync"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
)

// SearchBatch answers many kNN queries over one index with a pool of
// goroutines and returns the results in query order. Indexes are immutable
// during search and criteria are stateless, so the batch parallelises
// embarrassingly. workers ≤ 0 selects GOMAXPROCS.
//
// Per-query timing comparisons (the paper's figures) should use Search in
// a plain loop; SearchBatch is for throughput-oriented callers.
func SearchBatch(idx Index, queries []geom.Sphere, k int, crit dominance.Criterion, algo Algorithm, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	out := make([]Result, len(queries))
	if obs.On() {
		obsBatches.Inc()
		obsBatchQueries.Add(uint64(len(queries)))
	}
	if len(queries) == 0 {
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch arena per worker, reused across all its queries:
			// the traversal buffers, heap and best-list storage are
			// allocated once and recycled for the whole batch.
			sc := getScratch()
			defer putScratch(sc)
			for i := range next {
				out[i] = sc.search(idx, queries[i], k, crit, algo)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
