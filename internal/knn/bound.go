package knn

import (
	"math"
	"sync/atomic"

	"hyperdom/internal/obs"
)

// obsBoundTightened counts successful external-bound tightenings — the
// distK pushdown traffic of the scatter-gather layer (DESIGN.md §13).
var obsBoundTightened = obs.New("knn.bound_tightenings")

// Bound is a shared, monotonically tightening upper bound on the final
// global distK of a scatter-gather kNN query (DESIGN.md §13). The merge
// layer creates one per query; every per-shard search both publishes its
// own running local distK into it and reads it at node-prune decisions
// (pruneBound), so a shard that has already found k close candidates
// tightens the prune bound of every laggard shard.
//
// Correctness: a value stored here must never drop below the final global
// distK. Both producers satisfy that by construction — a shard's running
// local distK is the k-th smallest MaxDist within a subset of the data, so
// it is ≥ the global k-th smallest at all times; the merge layer's running
// global distK is computed over candidates merged so far and only shrinks
// toward (never past) the final value. Pruning a node or item whose
// MinDist exceeds the bound therefore discards only objects the final
// global Sk provably dominates (Lemma 9 / DCMinMax), which keeps the
// merged result set bit-identical to a single-index search.
//
// All methods are safe for concurrent use and never allocate. The zero
// value is NOT ready; construct with NewBound (which seeds +Inf).
type Bound struct {
	bits atomic.Uint64
}

// NewBound returns a bound seeded with +Inf (prunes nothing).
func NewBound() *Bound {
	b := &Bound{}
	b.Reset()
	return b
}

// Reset re-seeds the bound with +Inf for reuse across queries. Must not
// race with an in-flight query using the bound.
func (b *Bound) Reset() { b.bits.Store(math.Float64bits(math.Inf(1))) }

// Load returns the current bound.
func (b *Bound) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Tighten lowers the bound to v if v is smaller, and reports whether it
// did. NaN and non-improving values are ignored. Lock-free CAS-min; the
// bound is monotonically non-increasing over its lifetime, which is what
// lets traversals treat a single stale read as conservative.
func (b *Bound) Tighten(v float64) bool {
	if math.IsNaN(v) {
		return false
	}
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return false
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			if obs.On() {
				obsBoundTightened.Inc()
			}
			return true
		}
	}
}
