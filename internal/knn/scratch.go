package knn

import (
	"sync"

	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
	"hyperdom/internal/sstree"
)

// scratch is the per-search reusable arena: every buffer a traversal needs —
// child frames, distance keys, the best-first heap, and the best-known
// list's entry storage — lives here and is recycled through a sync.Pool, so
// a steady-state Search performs no heap allocation beyond the answer slice
// it hands to the caller.
//
// The child frames (stack/dists, ssStack/ssDists) are flat arenas shared by
// all levels of a depth-first recursion: each visit records the current
// length as its frame base, appends its children, and truncates back to the
// base on exit. Appends reuse the retained capacity, so after the first few
// searches the arena never grows.
//
// A scratch is owned by exactly one search at a time; SearchBatch gives each
// worker its own.
type scratch struct {
	list bestList

	// Generic (interface-based) traversal state.
	stack []IndexNode // DF child frames / HS expansion buffer
	dists []float64   // MinDist keys parallel to stack
	heap  nodeHeap    // HS frontier

	// Concrete SS-tree fast-path state (no IndexNode boxing).
	ssStack []sstree.Node
	ssDists []float64
	ssHeap  ssHeap

	// Packed (frozen snapshot) fast-path state: dense node ids instead of
	// cursors, plus a staging buffer for the streaming kernel outputs
	// (leaf item distances, HS child mindists). None of these hold
	// references, so pooling them needs no clearing.
	pStack []int32
	pDists []float64
	pBuf   []float64
	pHeap  pHeap

	// Quantized coarse-filter state (ISSUE 6): the tier this search
	// consults (stashed once at packed dispatch from the process-wide
	// QuantMode), the survivor-index buffer the select kernels fill, and
	// the coarse-prune / exact-fallback tallies flushObs drains. Plain
	// values, nothing to clear on pool put-back.
	quant packed.Tier
	qSel  []int32

	qNodePrunes uint64
	qNodeExact  uint64
	qItemPrunes uint64
	qItemExact  uint64

	// dfExpansions tallies children expanded by the depth-first
	// traversals this search (plain add; drained by flushObs).
	dfExpansions uint64

	// trace is the search's span buffer when this search was sampled for
	// execution tracing (ISSUE 4); tb points at it then and is nil
	// otherwise, so every instrumentation site pays one nil check. The
	// buffer's span storage is reused across traced searches on this
	// scratch; Span holds no references, so pooling it is leak-safe.
	trace obs.TraceBuf
	tb    *obs.TraceBuf

	// shard is this scratch's stable latency-histogram shard, assigned
	// round-robin at allocation. A scratch is owned by one goroutine per
	// search, so recording through it stripes concurrent workers across
	// the histogram's cache lines.
	shard int
}

// resetTraversal empties the traversal buffers before a search. The DF
// frame arenas unwind themselves, but a best-first search that terminates
// early (nearest frontier node beyond distk) leaves its remaining frontier
// on the heap — the next search on this scratch must not inherit it.
func (sc *scratch) resetTraversal() {
	sc.stack = clearLen(sc.stack)
	sc.dists = sc.dists[:0]
	sc.heap.nodes = clearLen(sc.heap.nodes)
	sc.heap.dists = sc.heap.dists[:0]
	sc.ssStack = clearLen(sc.ssStack)
	sc.ssDists = sc.ssDists[:0]
	sc.ssHeap.nodes = clearLen(sc.ssHeap.nodes)
	sc.ssHeap.dists = sc.ssHeap.dists[:0]
	sc.pStack = sc.pStack[:0]
	sc.pDists = sc.pDists[:0]
	sc.pHeap.es = sc.pHeap.es[:0]
}

var scratchPool = sync.Pool{New: func() any { return &scratch{shard: obs.NextShard()} }}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

// putScratch returns sc to the pool with every reference cleared over the
// buffers' full capacity: a pooled scratch may live arbitrarily long, and a
// single stale IndexNode, tree-node cursor, or Item would otherwise retain
// an entire index (or its data spheres) that the caller has dropped.
func putScratch(sc *scratch) {
	// A search flushes its own tallies when the obs gate is on; this
	// catches tallies accumulated while it was off (and the prepared-pair
	// remainder) so a pooled scratch never carries stale work counts into
	// a later measurement window.
	sc.clearObsTallies()
	sc.list.pp.FlushObs()
	sc.stack = clearCap(sc.stack)
	sc.dists = sc.dists[:0]
	sc.heap.nodes = clearCap(sc.heap.nodes)
	sc.heap.dists = sc.heap.dists[:0]
	sc.ssStack = clearCap(sc.ssStack)
	sc.ssDists = sc.ssDists[:0]
	sc.ssHeap.nodes = clearCap(sc.ssHeap.nodes)
	sc.ssHeap.dists = sc.ssHeap.dists[:0]
	sc.pStack = sc.pStack[:0]
	sc.pDists = sc.pDists[:0]
	sc.pHeap.es = sc.pHeap.es[:0]
	sc.list.entries = clearCap(sc.list.entries)
	sc.list.deferred = clearCap(sc.list.deferred)
	sc.list.stats = nil
	sc.list.tb = nil
	sc.list.ext = nil
	// A trace begun by a search that never reached its flush (obs gate
	// turned off mid-search) must not leak into the next search.
	sc.cancelTrace()
	scratchPool.Put(sc)
}

// cancelTrace abandons an in-flight trace, keeping the buffer for reuse.
func (sc *scratch) cancelTrace() {
	if sc.tb != nil {
		sc.trace.Cancel()
		sc.tb = nil
	}
}

// growToI32 is growTo for the survivor-index buffer.
func growToI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, 2*n)
	}
	return s[:n]
}

// clearCap zeroes s over its full capacity and returns it with length 0.
func clearCap[T any](s []T) []T {
	s = s[:cap(s)]
	clear(s)
	return s[:0]
}

// clearLen zeroes s over its current length and returns it with length 0.
func clearLen[T any](s []T) []T {
	clear(s)
	return s[:0]
}

// sortByDist sorts nodes and their parallel distance keys in tandem by
// ascending distance: insertion sort for the small fan-outs of real trees,
// an in-place heapsort fallback so a pathological fan-out cannot go
// quadratic. Replaces the old sort.Slice call, whose closure and
// reflect-based swapper allocated on every node visit.
func sortByDist[N any](nodes []N, dists []float64) {
	if len(nodes) <= 48 {
		for i := 1; i < len(nodes); i++ {
			n, d := nodes[i], dists[i]
			j := i - 1
			for j >= 0 && dists[j] > d {
				nodes[j+1], dists[j+1] = nodes[j], dists[j]
				j--
			}
			nodes[j+1], dists[j+1] = n, d
		}
		return
	}
	// Heapsort: build a max-heap, then repeatedly swap the root out.
	for i := len(nodes)/2 - 1; i >= 0; i-- {
		siftDownMax(nodes, dists, i, len(nodes))
	}
	for end := len(nodes) - 1; end > 0; end-- {
		nodes[0], nodes[end] = nodes[end], nodes[0]
		dists[0], dists[end] = dists[end], dists[0]
		siftDownMax(nodes, dists, 0, end)
	}
}

func siftDownMax[N any](nodes []N, dists []float64, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && dists[child+1] > dists[child] {
			child++
		}
		if dists[root] >= dists[child] {
			return
		}
		nodes[root], nodes[child] = nodes[child], nodes[root]
		dists[root], dists[child] = dists[child], dists[root]
		root = child
	}
}
