package knn

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/mtree"
)

// mAdapter adapts an M-tree to the Index interface.
type mAdapter struct{ t *mtree.Tree }

// WrapMTree adapts an M-tree for Search.
func WrapMTree(t *mtree.Tree) Index { return mAdapter{t} }

func (a mAdapter) RootNode() (IndexNode, bool) {
	root, ok := a.t.Root()
	if !ok {
		return nil, false
	}
	return mNode{root}, true
}

type mNode struct{ n mtree.Node }

func (n mNode) IsLeaf() bool                    { return n.n.IsLeaf() }
func (n mNode) MinDistTo(q geom.Sphere) float64 { return geom.MinDist(n.n.Sphere(), q) }
func (n mNode) NodeItems() []Item               { return n.n.Items() }
func (n mNode) DebugID() uint64                 { return n.n.DebugID() }
func (n mNode) ChildNodes(dst []IndexNode) []IndexNode {
	for _, c := range n.n.Children() {
		dst = append(dst, mNode{c})
	}
	return dst
}
