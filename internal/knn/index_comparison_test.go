package knn

import (
	"fmt"
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/mtree"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
)

// TestRTreeAgreesWithOthers: the kNN answer is index-independent, so the
// R-tree baseline must return exactly what the SS-tree returns.
func TestRTreeAgreesWithOthers(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for _, d := range []int{2, 6} {
		items := randItems(rng, d, 2500, 4)
		ss := sstree.New(d)
		rt := rtree.New(d)
		for _, it := range items {
			ss.Insert(it)
			rt.Insert(it)
		}
		for trial := 0; trial < 10; trial++ {
			sq := randQuery(rng, d, 4)
			k := 1 + rng.Intn(10)
			a := Search(WrapSSTree(ss), sq, k, dominance.Hyperbola{}, HS)
			b := Search(WrapRTree(rt), sq, k, dominance.Hyperbola{}, HS)
			if !equalIDs(sortedIDs(a.Items), sortedIDs(b.Items)) {
				t.Fatalf("d=%d trial=%d: R-tree answer differs from SS-tree", d, trial)
			}
		}
	}
}

// clusteredItems generates the feature-vector-like workload the
// sphere-tree literature evaluates on: points drawn from a mixture of
// Gaussian clusters (images of similar scenes share similar descriptors).
func clusteredItems(rng *rand.Rand, d, n, clusters int, spread float64) []Item {
	means := make([][]float64, clusters)
	for i := range means {
		m := make([]float64, d)
		for j := range m {
			m[j] = rng.Float64() * 100
		}
		means[i] = m
	}
	items := make([]Item, n)
	for i := range items {
		m := means[rng.Intn(clusters)]
		c := make([]float64, d)
		for j := range c {
			c[j] = m[j] + rng.NormFloat64()*spread
		}
		items[i] = Item{Sphere: geom.NewSphere(c, rng.Float64()), ID: i}
	}
	return items
}

// TestSphereTreesBeatRTreeInHighD reproduces the motivating claim of the
// sphere-tree literature the paper's introduction cites ([31, 20, 18]):
// for similarity search over high-dimensional clustered feature data,
// sphere-bounded nodes prune better than rectangle-bounded ones (a
// cluster's bounding sphere is tight while its bounding box's diagonal
// grows with √d). Measured as index nodes visited for identical kNN
// queries at d=16; on i.i.d. uniform/Gaussian data the gap narrows or
// reverses, which is consistent with the literature's focus on real
// image-feature workloads.
func TestSphereTreesBeatRTreeInHighD(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	const d = 16
	items := clusteredItems(rng, d, 8000, 30, 8)
	ss := sstree.New(d)
	rt := rtree.New(d)
	for _, it := range items {
		ss.Insert(it)
		rt.Insert(it)
	}
	var ssNodes, rtNodes int
	for trial := 0; trial < 15; trial++ {
		sq := items[rng.Intn(len(items))].Sphere
		ssNodes += Search(WrapSSTree(ss), sq, 10, dominance.Hyperbola{}, HS).Stats.NodesVisited
		rtNodes += Search(WrapRTree(rt), sq, 10, dominance.Hyperbola{}, HS).Stats.NodesVisited
	}
	t.Logf("nodes visited at d=%d: SS-tree %d, R-tree %d", d, ssNodes, rtNodes)
	if ssNodes >= rtNodes {
		t.Errorf("SS-tree visited %d nodes, R-tree %d; expected the sphere tree to prune better on clustered high-d data",
			ssNodes, rtNodes)
	}
}

// BenchmarkIndexNodeAccesses compares kNN query cost across the three
// index substrates at low and high dimensionality.
func BenchmarkIndexNodeAccesses(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	for _, d := range []int{4, 16} {
		items := randItems(rng, d, 10000, 1)
		ss := sstree.New(d)
		mt := mtree.New(d)
		rt := rtree.New(d)
		for _, it := range items {
			ss.Insert(it)
			mt.Insert(it)
			rt.Insert(it)
		}
		queries := make([]int, 32)
		for i := range queries {
			queries[i] = rng.Intn(len(items))
		}
		for _, idx := range []struct {
			name string
			i    Index
		}{
			{"SS-tree", WrapSSTree(ss)},
			{"M-tree", WrapMTree(mt)},
			{"R-tree", WrapRTree(rt)},
		} {
			idx := idx
			b.Run(fmt.Sprintf("d=%d/%s", d, idx.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					q := items[queries[i%len(queries)]].Sphere
					Search(idx.i, q, 10, dominance.Hyperbola{}, HS)
				}
			})
		}
	}
}
