package knn

import (
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/obs"
)

// TestTraceScrapeConcurrent is the flight-recorder/trace linkage race gate
// (ISSUE 4): searches recording sampled traces into the ring while scrapers
// hammer /debug/slow and /debug/trace must neither race (the -race CI run
// covers this file) nor tear spans — every trace served is a complete,
// internally consistent tree.
func TestTraceScrapeConcurrent(t *testing.T) {
	defer obs.SetEnabled(true)
	defer obs.SetTraceEvery(0)
	obs.SetEnabled(true)
	obs.ResetForTest()
	obs.SetTraceEvery(2)

	rng := rand.New(rand.NewSource(321))
	idx := index(randItems(rng, 4, 700, 2), 4)

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	const (
		searchers = 4
		rounds    = 200
	)
	var searchWG sync.WaitGroup
	for w := 0; w < searchers; w++ {
		searchWG.Add(1)
		go func(seed int64) {
			defer searchWG.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				algo := DF
				if i%2 == 0 {
					algo = HS
				}
				Search(idx, randQuery(rng, 4, 1), 5+i%7, dominance.Hyperbola{}, algo)
			}
		}(int64(w + 1))
	}

	stop := make(chan struct{})
	var readWG sync.WaitGroup

	// Two scrapers, one per endpoint, polling until the searchers finish.
	scrape := func(path string) {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := srv.Client().Get(srv.URL + path)
			if err != nil {
				t.Errorf("GET %s: %v", path, err)
				return
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Errorf("reading %s: %v", path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("%s status = %d", path, resp.StatusCode)
				return
			}
		}
	}
	readWG.Add(2)
	go scrape("/debug/slow")
	go scrape("/debug/trace")

	// A direct reader too: Traces() without the HTTP layer, checking span
	// trees for tearing while writers are active.
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, qt := range obs.Flight.Traces() {
				if len(qt.Spans) == 0 || qt.Spans[0].Kind != obs.SpanSearch {
					t.Errorf("trace %d has no root span", qt.ID)
					return
				}
				for i, sp := range qt.Spans {
					if i > 0 && (sp.Parent < 0 || int(sp.Parent) >= i) {
						t.Errorf("trace %d span %d torn: parent %d", qt.ID, i, sp.Parent)
						return
					}
				}
			}
		}
	}()

	searchWG.Wait()
	close(stop)
	readWG.Wait()

	if got := obs.Lookup("knn.searches").Load(); got != searchers*rounds {
		t.Errorf("knn.searches = %d, want %d", got, searchers*rounds)
	}
	if len(obs.Flight.Traces()) == 0 {
		t.Error("no traces retained after concurrent run")
	}
}
