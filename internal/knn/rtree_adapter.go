package knn

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/rtree"
)

// rAdapter adapts an R-tree to the Index interface.
type rAdapter struct{ t *rtree.Tree }

// WrapRTree adapts an R-tree for Search — the rectangle-bounded baseline
// for the sphere-vs-rectangle index comparison.
func WrapRTree(t *rtree.Tree) Index { return rAdapter{t} }

func (a rAdapter) RootNode() (IndexNode, bool) {
	root, ok := a.t.Root()
	if !ok {
		return nil, false
	}
	return rNode{root}, true
}

type rNode struct{ n rtree.Node }

func (n rNode) IsLeaf() bool { return n.n.IsLeaf() }
func (n rNode) MinDistTo(q geom.Sphere) float64 {
	return geom.MinDistRectSphere(n.n.Rect(), q)
}
func (n rNode) NodeItems() []Item { return n.n.Items() }
func (n rNode) DebugID() uint64   { return n.n.DebugID() }
func (n rNode) ChildNodes(dst []IndexNode) []IndexNode {
	for _, c := range n.n.Children() {
		dst = append(dst, rNode{c})
	}
	return dst
}
