// Package rtree implements a Guttman R-tree over hypersphere items, the
// rectangle-bounded baseline the sphere-tree literature — and the paper's
// introduction — compares against: "manipulating with hyperspheres in their
// indexing structures is very effective … compared with conventional
// well-known indexing structures based on hyperrectangles such as R-tree".
//
// Items are hyperspheres; each is stored under its minimum bounding
// rectangle. Insertion uses least-volume-enlargement subtree choice and
// Guttman's quadratic split. The tree plugs into the same kNN searches as
// the SS-tree and M-tree (package knn), which is what makes the
// node-access comparison in BenchmarkIndexNodeAccesses meaningful.
package rtree

import (
	"fmt"
	"math"

	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/packed"
)

// Item is the indexed unit, shared with the other index packages.
type Item = geom.Item

// DefaultMaxFill is the default node capacity.
const DefaultMaxFill = 24

// Tree is an R-tree over d-dimensional hypersphere items. Construct with
// New. Not safe for concurrent mutation.
type Tree struct {
	dim     int
	minFill int
	maxFill int
	root    *node
	size    int
	frozen  *packed.Tree // cached Freeze snapshot; nil when thawed
}

type node struct {
	leaf     bool
	rect     geom.Rect
	count    int
	children []*node
	items    []Item
	rects    []geom.Rect // item MBRs, parallel to items (leaves only)
}

// Option configures a Tree.
type Option func(*Tree)

// WithMaxFill sets the node capacity (minimum 4; min fill = capacity/3).
func WithMaxFill(m int) Option {
	return func(t *Tree) {
		if m < 4 {
			m = 4
		}
		t.maxFill = m
		t.minFill = m / 3
		if t.minFill < 2 {
			t.minFill = 2
		}
	}
}

// New returns an empty R-tree for dim-dimensional sphere items.
func New(dim int, opts ...Option) *Tree {
	if dim <= 0 {
		panic(fmt.Sprintf("rtree: New with dimensionality %d", dim))
	}
	t := &Tree{dim: dim}
	WithMaxFill(DefaultMaxFill)(t)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of indexed spheres.
func (t *Tree) Len() int { return t.size }

// Insert adds the item to the tree.
func (t *Tree) Insert(it Item) {
	if it.Sphere.Dim() != t.dim {
		panic(fmt.Sprintf("rtree: Insert of %d-dimensional sphere into %d-dimensional tree",
			it.Sphere.Dim(), t.dim))
	}
	if err := it.Sphere.Validate(); err != nil {
		panic("rtree: " + err.Error())
	}
	t.thaw()
	mbr := it.Sphere.MBR()
	if t.root == nil {
		t.root = &node{leaf: true, rect: mbr.Clone()}
	}
	left, right := t.insert(t.root, it, mbr)
	if right != nil {
		newRoot := &node{
			leaf:     false,
			rect:     geom.UnionRect(left.rect, right.rect),
			children: []*node{left, right},
			count:    left.count + right.count,
		}
		t.root = newRoot
	}
	t.size++
	if obs.On() {
		obsInserts.Inc()
	}
}

func (t *Tree) insert(n *node, it Item, mbr geom.Rect) (*node, *node) {
	geom.UnionRectInto(&n.rect, mbr)
	if n.leaf {
		n.items = append(n.items, it)
		n.rects = append(n.rects, mbr)
		n.count = len(n.items)
		if len(n.items) > t.maxFill {
			return t.splitLeaf(n)
		}
		return n, nil
	}
	best := chooseSubtree(n.children, mbr)
	left, right := t.insert(n.children[best], it, mbr)
	n.children[best] = left
	if right != nil {
		n.children = append(n.children, right)
		if len(n.children) > t.maxFill {
			n.count++
			return t.splitInternal(n)
		}
	}
	n.count++
	return n, nil
}

// chooseSubtree selects the child whose rectangle needs the least volume
// enlargement to absorb mbr, breaking ties toward the smaller volume.
func chooseSubtree(children []*node, mbr geom.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestVol := math.Inf(1)
	for i, c := range children {
		vol := c.rect.Volume()
		enl := geom.UnionRect(c.rect, mbr).Volume() - vol
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = i, enl, vol
		}
	}
	return best
}

// quadratic split: pick the pair of seeds wasting the most volume if
// grouped, then assign entries greedily by enlargement preference.
func quadraticSeeds(rects []geom.Rect) (int, int) {
	sa, sb := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := geom.UnionRect(rects[i], rects[j]).Volume() -
				rects[i].Volume() - rects[j].Volume()
			if waste > worst {
				worst, sa, sb = waste, i, j
			}
		}
	}
	return sa, sb
}

// assignGroups distributes indexes 0..n-1 into two groups seeded at sa, sb.
func assignGroups(rects []geom.Rect, sa, sb, minFill int) ([]int, []int) {
	ra := rects[sa].Clone()
	rb := rects[sb].Clone()
	ga := []int{sa}
	gb := []int{sb}
	for i := range rects {
		if i == sa || i == sb {
			continue
		}
		// Force the deficient side once the remainder runs out.
		remaining := len(rects) - len(ga) - len(gb)
		switch {
		case len(ga)+remaining == minFill:
			ga = append(ga, i)
			geom.UnionRectInto(&ra, rects[i])
			continue
		case len(gb)+remaining == minFill:
			gb = append(gb, i)
			geom.UnionRectInto(&rb, rects[i])
			continue
		}
		enlA := geom.UnionRect(ra, rects[i]).Volume() - ra.Volume()
		enlB := geom.UnionRect(rb, rects[i]).Volume() - rb.Volume()
		if enlA < enlB || (enlA == enlB && len(ga) <= len(gb)) {
			ga = append(ga, i)
			geom.UnionRectInto(&ra, rects[i])
		} else {
			gb = append(gb, i)
			geom.UnionRectInto(&rb, rects[i])
		}
	}
	return ga, gb
}

func (t *Tree) splitLeaf(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	sa, sb := quadraticSeeds(n.rects)
	ga, gb := assignGroups(n.rects, sa, sb, t.minFill)
	mk := func(idxs []int) *node {
		nn := &node{leaf: true}
		for _, i := range idxs {
			nn.items = append(nn.items, n.items[i])
			nn.rects = append(nn.rects, n.rects[i])
		}
		nn.refit()
		return nn
	}
	return mk(ga), mk(gb)
}

func (t *Tree) splitInternal(n *node) (*node, *node) {
	if obs.On() {
		obsSplits.Inc()
	}
	rects := make([]geom.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	sa, sb := quadraticSeeds(rects)
	ga, gb := assignGroups(rects, sa, sb, t.minFill)
	mk := func(idxs []int) *node {
		nn := &node{leaf: false}
		for _, i := range idxs {
			nn.children = append(nn.children, n.children[i])
		}
		nn.refit()
		return nn
	}
	return mk(ga), mk(gb)
}

// refit recomputes the node's rectangle and count from its entries.
func (n *node) refit() {
	if n.leaf {
		n.count = len(n.items)
		if n.count == 0 {
			return
		}
		n.rect = n.rects[0].Clone()
		for _, r := range n.rects[1:] {
			geom.UnionRectInto(&n.rect, r)
		}
		return
	}
	n.count = 0
	n.rect = n.children[0].rect.Clone()
	for _, c := range n.children {
		n.count += c.count
		geom.UnionRectInto(&n.rect, c.rect)
	}
}
