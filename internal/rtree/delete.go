package rtree

import (
	"hyperdom/internal/geom"
	"hyperdom/internal/obs"
	"hyperdom/internal/vec"
)

// Delete removes one item with the given ID and an equal sphere from the
// tree and reports whether such an item was found, using Guttman's
// condense-tree strategy: underflowing leaves are dissolved and their
// items reinserted.
func (t *Tree) Delete(it Item) bool {
	if t.root == nil {
		return false
	}
	t.thaw()
	mbr := it.Sphere.MBR()
	var orphans []Item
	if !t.delete(t.root, it, mbr, &orphans) {
		return false
	}
	t.size--
	for t.root != nil && !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root != nil && t.root.leaf && len(t.root.items) == 0 {
		t.root = nil
	}
	for _, o := range orphans {
		t.size--
		t.Insert(o)
	}
	if obs.On() {
		obsDeletes.Inc()
		obsReinserts.Add(uint64(len(orphans)))
	}
	return true
}

func (t *Tree) delete(n *node, it Item, mbr geom.Rect, orphans *[]Item) bool {
	if !n.rect.Intersects(mbr) {
		return false
	}
	if n.leaf {
		for i, cand := range n.items {
			if cand.ID == it.ID && cand.Sphere.Radius == it.Sphere.Radius &&
				vec.Equal(cand.Sphere.Center, it.Sphere.Center) {
				n.items = append(n.items[:i], n.items[i+1:]...)
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.refit()
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if !t.delete(c, it, mbr, orphans) {
			continue
		}
		if len(c.items)+len(c.children) < t.minFill && len(n.children) > 1 {
			collectItems(c, orphans)
			n.children = append(n.children[:i], n.children[i+1:]...)
		}
		n.refit()
		return true
	}
	return false
}

func collectItems(n *node, out *[]Item) {
	if n.leaf {
		*out = append(*out, n.items...)
		return
	}
	for _, c := range n.children {
		collectItems(c, out)
	}
}
