package rtree

import "hyperdom/internal/obs"

// Structural observability counters (ISSUE 2), mirroring the sstree set;
// see sstree/metrics.go.
var (
	obsInserts   = obs.New("rtree.inserts")
	obsDeletes   = obs.New("rtree.deletes")
	obsSplits    = obs.New("rtree.node_splits")
	obsReinserts = obs.New("rtree.reinserts")
)
