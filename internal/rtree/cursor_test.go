package rtree

import (
	"math/rand"
	"testing"
)

// TestCursorTraversal walks the tree through the read-only cursor API and
// verifies counts and rectangle containment along the way.
func TestCursorTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	tr, _ := buildTree(t, rng, 3, 700, WithMaxFill(8))
	if tr.Dim() != 3 {
		t.Errorf("Dim=%d", tr.Dim())
	}
	root, ok := tr.Root()
	if !ok {
		t.Fatal("no root")
	}
	total := 0
	var walk func(n Node)
	walk = func(n Node) {
		rect := n.Rect()
		if n.IsLeaf() {
			total += len(n.Items())
			for _, it := range n.Items() {
				mbr := it.Sphere.MBR()
				for j := range mbr.Lo {
					if mbr.Lo[j] < rect.Lo[j]-1e-9 || mbr.Hi[j] > rect.Hi[j]+1e-9 {
						t.Fatal("item escapes node rectangle via cursor view")
					}
				}
			}
			return
		}
		sum := 0
		for _, c := range n.Children() {
			sum += c.Count()
			walk(c)
		}
		if sum != n.Count() {
			t.Fatalf("node Count=%d but children sum to %d", n.Count(), sum)
		}
	}
	walk(root)
	if total != tr.Len() {
		t.Errorf("cursor walk saw %d items, Len=%d", total, tr.Len())
	}
}
