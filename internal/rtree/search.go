package rtree

import (
	"reflect"

	"hyperdom/internal/geom"
)

// Node is a read-only cursor over a tree node.
type Node struct {
	n *node
}

// Root returns a cursor to the root node; ok is false for an empty tree.
func (t *Tree) Root() (Node, bool) {
	if t.root == nil {
		return Node{}, false
	}
	return Node{t.root}, true
}

// IsLeaf reports whether the node is a leaf.
func (n Node) IsLeaf() bool { return n.n.leaf }

// Count returns the number of spheres under the node.
func (n Node) Count() int { return n.n.count }

// Rect returns the node's bounding rectangle; callers must not modify it.
func (n Node) Rect() geom.Rect { return n.n.rect }

// Children returns cursors to the node's children. Only valid on internal
// nodes.
func (n Node) Children() []Node {
	out := make([]Node, len(n.n.children))
	for i, c := range n.n.children {
		out[i] = Node{c}
	}
	return out
}

// NumChildren returns the number of children. Only valid on internal nodes.
func (n Node) NumChildren() int { return len(n.n.children) }

// Child returns a cursor to the i-th child without allocating (unlike
// Children, which builds a fresh slice). Only valid on internal nodes.
func (n Node) Child(i int) Node { return Node{n.n.children[i]} }

// Items returns the node's items. Only valid on leaves; callers must not
// modify the returned slice.
func (n Node) Items() []Item { return n.n.items }

// DebugID returns an opaque identifier for the underlying node — stable
// across visits for the tree's lifetime and distinct between live nodes —
// for execution traces and prune audits. It carries no meaning beyond
// identity.
func (n Node) DebugID() uint64 { return uint64(reflect.ValueOf(n.n).Pointer()) }

// RangeSearch returns all items whose spheres intersect the query sphere.
func (t *Tree) RangeSearch(q geom.Sphere) []Item {
	if q.Dim() != t.dim {
		panic("rtree: RangeSearch with mismatched dimensionality")
	}
	var out []Item
	if t.root == nil {
		return out
	}
	var walk func(n *node)
	walk = func(n *node) {
		if geom.MinDistRectSphere(n.rect, q) > 0 {
			return
		}
		if n.leaf {
			for _, it := range n.items {
				if geom.Overlap(it.Sphere, q) {
					out = append(out, it)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Visit calls fn for every indexed item; returning false stops the walk.
func (t *Tree) Visit(fn func(Item) bool) {
	if t.root == nil {
		return
	}
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for _, it := range n.items {
				if !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// CheckInvariants validates the structural invariants and returns a
// description of the first violation, or "".
func (t *Tree) CheckInvariants() string {
	if t.root == nil {
		if t.size != 0 {
			return "empty root but non-zero size"
		}
		return ""
	}
	leafDepth := -1
	total := 0
	var walk func(n *node, depth int) string
	walk = func(n *node, depth int) string {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return "leaves at differing depths"
			}
			if n.count != len(n.items) || len(n.items) != len(n.rects) {
				return "leaf bookkeeping mismatch"
			}
			total += len(n.items)
			for i, it := range n.items {
				mbr := it.Sphere.MBR()
				for j := range mbr.Lo {
					if mbr.Lo[j] < n.rect.Lo[j]-1e-9 || mbr.Hi[j] > n.rect.Hi[j]+1e-9 {
						return "item escapes leaf rectangle"
					}
					if mbr.Lo[j] != n.rects[i].Lo[j] || mbr.Hi[j] != n.rects[i].Hi[j] {
						return "cached item MBR is stale"
					}
				}
			}
			return ""
		}
		if depth == 0 && len(n.children) < 2 {
			return "internal root with fewer than 2 children"
		}
		cnt := 0
		for _, c := range n.children {
			for j := range c.rect.Lo {
				if c.rect.Lo[j] < n.rect.Lo[j]-1e-9 || c.rect.Hi[j] > n.rect.Hi[j]+1e-9 {
					return "child escapes parent rectangle"
				}
			}
			if msg := walk(c, depth+1); msg != "" {
				return msg
			}
			cnt += c.count
		}
		if n.count != cnt {
			return "internal count mismatch"
		}
		return ""
	}
	if msg := walk(t.root, 0); msg != "" {
		return msg
	}
	if total != t.size {
		return "tree size does not match item total"
	}
	return ""
}
