package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"hyperdom/internal/geom"
)

func randItem(rng *rand.Rand, d int, id int) Item {
	c := make([]float64, d)
	for i := range c {
		c[i] = rng.NormFloat64() * 25
	}
	return Item{Sphere: geom.NewSphere(c, rng.Float64()*3), ID: id}
}

func buildTree(t *testing.T, rng *rand.Rand, d, n int, opts ...Option) (*Tree, []Item) {
	t.Helper()
	tree := New(d, opts...)
	items := make([]Item, n)
	for i := 0; i < n; i++ {
		items[i] = randItem(rng, d, i)
		tree.Insert(items[i])
	}
	return tree, items
}

func TestEmptyTree(t *testing.T) {
	tr := New(3)
	if tr.Len() != 0 {
		t.Errorf("Len=%d", tr.Len())
	}
	if _, ok := tr.Root(); ok {
		t.Error("empty tree has a root")
	}
	if msg := tr.CheckInvariants(); msg != "" {
		t.Error(msg)
	}
}

func TestInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 24, 25, 500, 3000} {
		tr, _ := buildTree(t, rng, 4, n)
		if tr.Len() != n {
			t.Errorf("n=%d: Len=%d", n, tr.Len())
		}
		if msg := tr.CheckInvariants(); msg != "" {
			t.Errorf("n=%d: %s", n, msg)
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{2, 6} {
		tr, items := buildTree(t, rng, d, 2000)
		for trial := 0; trial < 25; trial++ {
			q := randItem(rng, d, -1).Sphere
			q.Radius += 10 * rng.Float64()
			var want []int
			for _, it := range items {
				if geom.Overlap(it.Sphere, q) {
					want = append(want, it.ID)
				}
			}
			got := tr.RangeSearch(q)
			gotIDs := make([]int, len(got))
			for i, it := range got {
				gotIDs[i] = it.ID
			}
			sort.Ints(want)
			sort.Ints(gotIDs)
			if len(want) != len(gotIDs) {
				t.Fatalf("d=%d trial=%d: got %d, want %d", d, trial, len(gotIDs), len(want))
			}
			for i := range want {
				if want[i] != gotIDs[i] {
					t.Fatalf("d=%d trial=%d: ID mismatch", d, trial)
				}
			}
		}
	}
}

func TestVisitSeesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, items := buildTree(t, rng, 3, 1500)
	seen := map[int]bool{}
	tr.Visit(func(it Item) bool {
		seen[it.ID] = true
		return true
	})
	if len(seen) != len(items) {
		t.Fatalf("visited %d of %d", len(seen), len(items))
	}
}

func TestSmallFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, _ := buildTree(t, rng, 2, 1000, WithMaxFill(4))
	if msg := tr.CheckInvariants(); msg != "" {
		t.Fatal(msg)
	}
}

func TestInsertPanics(t *testing.T) {
	tr := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-dimension insert did not panic")
		}
	}()
	tr.Insert(Item{Sphere: geom.NewSphere([]float64{1, 2}, 1)})
}
