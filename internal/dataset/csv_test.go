package dataset

import (
	"bytes"
	"strings"
	"testing"

	"hyperdom/internal/vec"
)

func TestCSVRoundTrip(t *testing.T) {
	ps := SyntheticCenters(200, 5, Gaussian, 9)
	items := Spheres(ps, GaussianRadii(7), 10)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, items); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := LoadCSV(&buf)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].ID != items[i].ID ||
			got[i].Sphere.Radius != items[i].Sphere.Radius ||
			!vec.Equal(got[i].Sphere.Center, items[i].Sphere.Center) {
			t.Fatalf("item %d does not round-trip exactly", i)
		}
	}
}

func TestLoadCSVCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n0,1.5,2,3\n\n# another\n1,0,4,5\n"
	items, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if len(items) != 2 || items[1].Sphere.Center[1] != 5 {
		t.Fatalf("parsed %v", items)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"short row":       "0,1\n",
		"bad id":          "x,1,2\n",
		"bad radius":      "0,huh,2\n",
		"negative radius": "0,-1,2\n",
		"bad coord":       "0,1,zap\n",
		"mixed dims":      "0,1,2,3\n1,1,2\n",
		"nan coord":       "0,1,NaN\n",
	}
	for name, in := range cases {
		if _, err := LoadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadCSVEmpty(t *testing.T) {
	items, err := LoadCSV(strings.NewReader(""))
	if err != nil || len(items) != 0 {
		t.Errorf("empty input: %v, %d items", err, len(items))
	}
}

func TestLoadCSVInfinityRejected(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader("0,1,+Inf\n")); err == nil {
		t.Error("infinite coordinate accepted")
	}
}
