package dataset

import (
	"math"
	"testing"

	"hyperdom/internal/stats"
)

func TestSyntheticCentersGaussian(t *testing.T) {
	ps := SyntheticCenters(20000, 4, Gaussian, 1)
	if len(ps.Points) != 20000 || ps.Dim != 4 {
		t.Fatalf("got %d points dim %d", len(ps.Points), ps.Dim)
	}
	// Per-coordinate mean ≈ 100, stddev ≈ 25 (Table 2).
	for j := 0; j < 4; j++ {
		col := make([]float64, len(ps.Points))
		for i, p := range ps.Points {
			col[i] = p[j]
		}
		if m := stats.Mean(col); math.Abs(m-100) > 1 {
			t.Errorf("dim %d mean = %v, want ≈100", j, m)
		}
		if s := stats.StdDev(col); math.Abs(s-25) > 1 {
			t.Errorf("dim %d stddev = %v, want ≈25", j, s)
		}
	}
}

func TestSyntheticCentersUniform(t *testing.T) {
	ps := SyntheticCenters(20000, 3, Uniform, 2)
	for _, p := range ps.Points {
		for _, x := range p {
			if x < 0 || x > 200 {
				t.Fatalf("uniform coordinate %v outside [0,200]", x)
			}
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticCenters(100, 3, Gaussian, 7)
	b := SyntheticCenters(100, 3, Gaussian, 7)
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := SyntheticCenters(100, 3, Gaussian, 8)
	same := true
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != c.Points[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSpheresGaussianRadii(t *testing.T) {
	ps := SyntheticCenters(20000, 2, Gaussian, 3)
	items := Spheres(ps, GaussianRadii(50), 4)
	if len(items) != 20000 {
		t.Fatalf("got %d items", len(items))
	}
	radii := make([]float64, len(items))
	for i, it := range items {
		if it.Sphere.Radius < 0 {
			t.Fatal("negative radius")
		}
		if it.ID != i {
			t.Fatal("IDs must be point indices")
		}
		radii[i] = it.Sphere.Radius
	}
	if m := stats.Mean(radii); math.Abs(m-50) > 1 {
		t.Errorf("radius mean = %v, want ≈50", m)
	}
	if s := stats.StdDev(radii); math.Abs(s-12.5) > 1 {
		t.Errorf("radius stddev = %v, want ≈12.5 (μ/4)", s)
	}
}

func TestSpheresUniformRadii(t *testing.T) {
	ps := SyntheticCenters(1000, 2, Gaussian, 3)
	for _, it := range Spheres(ps, UniformRadii(0, 200), 4) {
		if it.Sphere.Radius < 0 || it.Sphere.Radius > 200 {
			t.Fatalf("uniform radius %v outside [0,200]", it.Sphere.Radius)
		}
	}
}

func TestRealDatasetShapes(t *testing.T) {
	want := map[string]struct{ n, d int }{
		"NBA":     {17265, 17},
		"Color":   {68040, 9},
		"Texture": {68040, 16},
		"Forest":  {82012, 10},
	}
	for _, ps := range Real() {
		w, ok := want[ps.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", ps.Name)
		}
		if len(ps.Points) != w.n || ps.Dim != w.d {
			t.Errorf("%s: %d × %dd, want %d × %dd", ps.Name, len(ps.Points), ps.Dim, w.n, w.d)
		}
		for _, p := range ps.Points[:100] {
			if len(p) != w.d {
				t.Fatalf("%s: point with %d coordinates", ps.Name, len(p))
			}
			for _, x := range p {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatalf("%s: non-finite coordinate", ps.Name)
				}
			}
		}
	}
}

func TestRealDatasetsDeterministic(t *testing.T) {
	a := NBA()
	b := NBA()
	for i := 0; i < 50; i++ {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("NBA() is not deterministic")
			}
		}
	}
}

func TestRealDatasetsAreClustered(t *testing.T) {
	// The stand-ins must not be i.i.d. uniform noise: the per-dimension
	// variance of cluster-structured data noticeably exceeds the variance
	// within a typical neighbourhood. As a cheap proxy, verify that the
	// first coordinate's distribution is multi-modal-ish: stddev of the
	// whole column is much larger than the spread parameter would give a
	// single cluster.
	ps := Color()
	col := make([]float64, 5000)
	for i := range col {
		col[i] = ps.Points[i][0]
	}
	sd := stats.StdDev(col)
	if sd < 20 {
		t.Errorf("Color first-coordinate stddev %v; expected clustered spread over [0,200]", sd)
	}
}

func TestSample(t *testing.T) {
	ps := SyntheticCenters(1000, 2, Gaussian, 5)
	s := ps.Sample(100, 6)
	if len(s.Points) != 100 {
		t.Fatalf("Sample returned %d points", len(s.Points))
	}
	full := ps.Sample(5000, 6)
	if len(full.Points) != 1000 {
		t.Fatalf("oversized Sample returned %d points", len(full.Points))
	}
}

func TestDistributionString(t *testing.T) {
	if Gaussian.String() != "G" || Uniform.String() != "U" {
		t.Error("Distribution String broken")
	}
}
