package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hyperdom/internal/geom"
)

// WriteCSV streams items as "id,radius,c1,…,cd" rows — the format
// cmd/datagen emits and LoadCSV reads back.
func WriteCSV(w io.Writer, items []geom.Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%d,%s", it.ID,
			strconv.FormatFloat(it.Sphere.Radius, 'g', -1, 64)); err != nil {
			return err
		}
		for _, c := range it.Sphere.Center {
			if _, err := fmt.Fprintf(bw, ",%s", strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads "id,radius,c1,…,cd" rows. All rows must share one
// dimensionality; blank lines and lines starting with '#' are skipped.
// This is the bridge for users who hold the actual NBA/Corel/Forest files
// the paper used: export them in this format and every experiment runs on
// the real data instead of the simulated stand-ins.
func LoadCSV(r io.Reader) ([]geom.Item, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var items []geom.Item
	dim := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("dataset: line %d: need at least id,radius,c1", lineNo)
		}
		id, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad id %q: %w", lineNo, fields[0], err)
		}
		radius, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad radius %q: %w", lineNo, fields[1], err)
		}
		if radius < 0 {
			return nil, fmt.Errorf("dataset: line %d: negative radius %v", lineNo, radius)
		}
		coords := fields[2:]
		if dim == -1 {
			dim = len(coords)
		} else if len(coords) != dim {
			return nil, fmt.Errorf("dataset: line %d: %d coordinates, want %d", lineNo, len(coords), dim)
		}
		center := make([]float64, dim)
		for i, f := range coords {
			c, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad coordinate %q: %w", lineNo, f, err)
			}
			center[i] = c
		}
		sphere := geom.Sphere{Center: center, Radius: radius}
		if err := sphere.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		items = append(items, geom.Item{Sphere: sphere, ID: id})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading: %w", err)
	}
	return items, nil
}
