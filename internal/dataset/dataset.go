// Package dataset generates the evaluation datasets of Section 7 of the
// paper.
//
// Synthetic data follows Table 2 exactly: sphere centers with coordinates
// drawn from N(100, 25) (or uniformly from [0, 200]) and radii drawn from
// N(μ, μ/4) (or uniformly from [0, 200]), clamped at zero.
//
// The four real datasets the paper uses — NBA (17,265 × 17d), Corel Color
// (68,040 × 9d), Corel Texture (68,040 × 16d) and Forest (82,012 × 10d) —
// are not redistributable and the build is offline, so this package ships
// seeded synthetic stand-ins with the same cardinality, dimensionality and
// a comparable cluster/scale structure (mixtures of correlated Gaussians
// with per-dimension scales). The paper's experiments use these datasets
// only as sources of sphere centers, so the reproduced claims — relative
// running times and the precision/recall behaviour of the five criteria as
// the radius grows — depend on dimensionality, coordinate scale and
// clustering, all of which the stand-ins preserve. See DESIGN.md §5.
package dataset

import (
	"fmt"
	"math/rand"

	"hyperdom/internal/geom"
)

// Distribution selects how values are drawn.
type Distribution int

const (
	// Gaussian draws coordinates from N(100, 25) and radii from N(μ, μ/4).
	Gaussian Distribution = iota
	// Uniform draws coordinates and radii from [0, 200].
	Uniform
)

// String implements fmt.Stringer ("G" / "U", as in the paper's Figure 12).
func (d Distribution) String() string {
	switch d {
	case Gaussian:
		return "G"
	case Uniform:
		return "U"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// PointSet is a named collection of d-dimensional points, used as sphere
// centers.
type PointSet struct {
	Name   string
	Dim    int
	Points [][]float64
}

// SyntheticCenters generates n d-dimensional centers per Table 2.
func SyntheticCenters(n, d int, dist Distribution, seed int64) PointSet {
	if n <= 0 || d <= 0 {
		panic(fmt.Sprintf("dataset: SyntheticCenters(%d, %d)", n, d))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			switch dist {
			case Gaussian:
				p[j] = 100 + rng.NormFloat64()*25
			case Uniform:
				p[j] = rng.Float64() * 200
			default:
				panic("dataset: unknown distribution")
			}
		}
		pts[i] = p
	}
	return PointSet{Name: fmt.Sprintf("Synthetic-%s-%dd", dist, d), Dim: d, Points: pts}
}

// RadiusSpec describes how hypersphere radii are attached to points.
type RadiusSpec struct {
	Dist Distribution
	Mu   float64 // Gaussian mean; σ = Mu/4 per the paper
	Lo   float64 // Uniform range
	Hi   float64
}

// GaussianRadii returns the paper's default radius model: N(μ, μ/4),
// clamped at zero.
func GaussianRadii(mu float64) RadiusSpec {
	return RadiusSpec{Dist: Gaussian, Mu: mu}
}

// UniformRadii returns radii drawn uniformly from [lo, hi].
func UniformRadii(lo, hi float64) RadiusSpec {
	return RadiusSpec{Dist: Uniform, Lo: lo, Hi: hi}
}

// Spheres attaches radii to the point set, producing indexable items whose
// IDs are the point indices.
func Spheres(ps PointSet, radii RadiusSpec, seed int64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]geom.Item, len(ps.Points))
	for i, p := range ps.Points {
		var r float64
		switch radii.Dist {
		case Gaussian:
			r = radii.Mu + rng.NormFloat64()*radii.Mu/4
		case Uniform:
			r = radii.Lo + rng.Float64()*(radii.Hi-radii.Lo)
		default:
			panic("dataset: unknown radius distribution")
		}
		if r < 0 {
			r = 0
		}
		items[i] = geom.Item{Sphere: geom.NewSphere(p, r), ID: i}
	}
	return items
}

// Sample returns a deterministic subsample of n points (all points if
// n ≥ len). Used to keep test and bench workloads tractable while
// preserving the set's distribution.
func (ps PointSet) Sample(n int, seed int64) PointSet {
	if n >= len(ps.Points) {
		return ps
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(ps.Points))[:n]
	pts := make([][]float64, n)
	for i, j := range idx {
		pts[i] = ps.Points[j]
	}
	return PointSet{Name: ps.Name, Dim: ps.Dim, Points: pts}
}
