package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hyperdom/internal/dataset"
	"hyperdom/internal/knn"
	"hyperdom/internal/shard"
	"hyperdom/internal/stats"
	"hyperdom/internal/workload"
)

// ShardedRow is one shard count of the scatter-gather scaling experiment.
type ShardedRow struct {
	Shards    int
	OpsPerSec float64
	Scaling   float64 // versus the first shard count
}

// ShardedResult is the scatter-gather scaling experiment: the same query
// stream answered through sharded indexes of growing shard counts.
type ShardedResult struct {
	Items      int
	Queries    int
	K          int
	GoMaxProcs int
	Rows       []ShardedRow
}

// RunSharded measures scatter-gather kNN throughput at each requested
// shard count (e.g. 1, 2, 4). The dataset follows the paper's default
// synthetic setting and the queries are drawn from it (the Section 7.2
// query model); every shard count answers with HS(Hyper) over frozen
// packed shards, and — by the merge layer's bit-identity guarantee — every
// row computes the identical result sets, so the table isolates the
// scatter-gather overhead and its distK-pushdown payoff. Scaling is
// reported against the first count and cannot exceed GOMAXPROCS, which the
// result records.
func RunSharded(cfg Config, shardCounts []int) ShardedResult {
	cfg = cfg.normalized()
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	n := cfg.scaled(DefaultSize, 1000)
	nq := cfg.scaled(2000, 64)
	ps := dataset.SyntheticCenters(n, DefaultDim, dataset.Gaussian, cfg.Seed)
	items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed)
	queries := workload.KNNQueries(items, nq, cfg.Seed+99)

	res := ShardedResult{Items: n, Queries: nq, K: DefaultK, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, s := range shardCounts {
		if s < 1 {
			s = 1
		}
		x, err := shard.Build(items, DefaultDim, shard.Options{
			Shards:    s,
			Algorithm: knn.HS,
			Label:     fmt.Sprintf("bench-%d", s),
		})
		if err != nil {
			panic(err) // impossible: options are well-formed by construction
		}
		// Two timed passes, keeping the faster: the first also warms every
		// shard pool's scratch arenas.
		var best time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			for _, q := range queries {
				x.Search(q, DefaultK)
			}
			if el := time.Since(start); rep == 0 || el < best {
				best = el
			}
		}
		x.Close()
		row := ShardedRow{Shards: s, OpsPerSec: float64(nq) / best.Seconds(), Scaling: 1}
		if len(res.Rows) > 0 && res.Rows[0].OpsPerSec > 0 {
			row.Scaling = row.OpsPerSec / res.Rows[0].OpsPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders the shard-scaling table.
func (r ShardedResult) Table() stats.Table {
	t := stats.Table{
		Title: fmt.Sprintf("Scatter-gather shard scaling — HS(Hyper), %d items, %d queries, k=%d, GOMAXPROCS=%d",
			r.Items, r.Queries, r.K, r.GoMaxProcs),
		Header: []string{"Shards", "Queries/s", "Scaling"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%.0f", row.OpsPerSec),
			fmt.Sprintf("%.2fx", row.Scaling))
	}
	return t
}
