package experiments

import (
	"strings"
	"testing"
)

func TestRunParallel(t *testing.T) {
	res := RunParallel(Config{Scale: 0.01, Seed: 5}, []int{1, 2})
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0].Workers != 1 || res.Rows[1].Workers != 2 {
		t.Errorf("widths = %d, %d, want 1, 2", res.Rows[0].Workers, res.Rows[1].Workers)
	}
	if res.Rows[0].Scaling != 1 {
		t.Errorf("first-width scaling = %v, want 1 (it is the baseline)", res.Rows[0].Scaling)
	}
	for i, row := range res.Rows {
		if row.OpsPerSec <= 0 {
			t.Errorf("row %d: OpsPerSec = %v", i, row.OpsPerSec)
		}
	}
	if res.GoMaxProcs < 1 {
		t.Errorf("GoMaxProcs = %d", res.GoMaxProcs)
	}
	table := res.Table().Render()
	for _, want := range []string{"Workers", "Queries/s", "Scaling", "1.00x"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
}

func TestRunParallelDefaultWidths(t *testing.T) {
	res := RunParallel(Config{Scale: 0.01, Seed: 5}, nil)
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want the 1/2/4/8 default", len(res.Rows))
	}
}
