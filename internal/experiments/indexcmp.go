package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/mtree"
	"hyperdom/internal/rtree"
	"hyperdom/internal/sstree"
	"hyperdom/internal/stats"
)

// IndexComparison is an extension experiment beyond the paper's figures:
// it quantifies the claim the introduction cites from the sphere-tree
// literature ([31, 20, 18]) — that sphere-bounded indexes beat
// rectangle-bounded ones for similarity search over high-dimensional
// clustered data — by running the same Hyperbola-based kNN queries over an
// SS-tree, an M-tree and an R-tree and reporting nodes visited and wall
// time per query.
type IndexComparisonResult struct {
	Rows    []IndexComparisonRow
	Queries int
}

// IndexComparisonRow is one dimensionality point.
type IndexComparisonRow struct {
	Dim     int
	Metrics map[string]IndexMetrics // keyed by index name
}

// IndexMetrics are the per-index measurements.
type IndexMetrics struct {
	Nodes   float64 // mean index nodes visited per query
	QueryNs float64 // mean wall time per query
}

// IndexNames lists the compared indexes in presentation order.
func IndexNames() []string { return []string{"SS-tree", "M-tree", "R-tree"} }

// RunIndexComparison executes the experiment. Data is a seeded mixture of
// Gaussian clusters (the image-feature-like workload the literature
// evaluates on).
func RunIndexComparison(cfg Config) IndexComparisonResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 2000)
	nq := cfg.scaled(200, 10)
	res := IndexComparisonResult{Queries: nq}
	for _, d := range []int{4, 8, 16, 32} {
		items := clusteredItems(cfg.Seed+int64(d), d, n, 30, 8)
		queries := make([]geom.Sphere, nq)
		rng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(d)))
		for i := range queries {
			queries[i] = items[rng.Intn(len(items))].Sphere
		}

		ss := sstree.New(d)
		mt := mtree.New(d)
		rt := rtree.New(d)
		for _, it := range items {
			ss.Insert(it)
			mt.Insert(it)
			rt.Insert(it)
		}
		row := IndexComparisonRow{Dim: d, Metrics: map[string]IndexMetrics{}}
		for _, idx := range []struct {
			name string
			i    knn.Index
		}{
			{"SS-tree", knn.WrapSSTree(ss)},
			{"M-tree", knn.WrapMTree(mt)},
			{"R-tree", knn.WrapRTree(rt)},
		} {
			var nodes int
			start := time.Now()
			for _, q := range queries {
				r := knn.Search(idx.i, q, DefaultK, dominance.Hyperbola{}, knn.HS)
				nodes += r.Stats.NodesVisited
			}
			elapsed := time.Since(start)
			row.Metrics[idx.name] = IndexMetrics{
				Nodes:   float64(nodes) / float64(nq),
				QueryNs: float64(elapsed.Nanoseconds()) / float64(nq),
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders the comparison.
func (r IndexComparisonResult) Table() stats.Table {
	t := stats.Table{
		Title:  fmt.Sprintf("Index comparison — kNN with HS(Hyper) on clustered data (%d queries/point)", r.Queries),
		Header: []string{"Dim"},
	}
	for _, name := range IndexNames() {
		t.Header = append(t.Header, name+" nodes", name+" ms")
	}
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%d", row.Dim)}
		for _, name := range IndexNames() {
			m := row.Metrics[name]
			cells = append(cells,
				fmt.Sprintf("%.0f", m.Nodes),
				fmt.Sprintf("%.2f", m.QueryNs/1e6))
		}
		t.AddRow(cells...)
	}
	return t
}

// clusteredItems draws n d-dimensional spheres from a seeded mixture of
// Gaussian clusters over [0,100]^d with unit-scale radii.
func clusteredItems(seed int64, d, n, clusters int, spread float64) []geom.Item {
	rng := rand.New(rand.NewSource(seed))
	means := make([][]float64, clusters)
	for i := range means {
		m := make([]float64, d)
		for j := range m {
			m[j] = rng.Float64() * 100
		}
		means[i] = m
	}
	items := make([]geom.Item, n)
	for i := range items {
		m := means[rng.Intn(clusters)]
		c := make([]float64, d)
		for j := range c {
			c[j] = m[j] + rng.NormFloat64()*spread
		}
		items[i] = geom.Item{Sphere: geom.NewSphere(c, rng.Float64()), ID: i}
	}
	return items
}
