package experiments

import (
	"fmt"
	"runtime"
	"time"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
	"hyperdom/internal/stats"
	"hyperdom/internal/workload"
)

// ParallelRow is one pool width of the batch-engine scaling experiment.
type ParallelRow struct {
	Workers   int
	OpsPerSec float64
	Scaling   float64 // versus the 1-worker pool
}

// ParallelResult is the batch-engine scaling experiment: the same query
// batch answered through engine pools of growing width over one frozen
// SS-tree.
type ParallelResult struct {
	Items      int
	Queries    int
	K          int
	GoMaxProcs int
	Rows       []ParallelRow
}

// RunParallel measures batch kNN throughput through the engine worker pool
// at each requested pool width (e.g. 1, 2, 4, 8). The dataset follows the
// paper's default synthetic setting, the query batch is drawn from the
// dataset itself (the Section 7.2 query model), and every width answers
// with HS(Hyper) over the frozen packed snapshot — the answers are
// identical at every width, so the table isolates scheduling throughput.
// Scaling is reported against the first width; it cannot exceed
// GOMAXPROCS, which the result records so a flat table on a one-core
// machine reads as expected, not broken.
func RunParallel(cfg Config, workers []int) ParallelResult {
	cfg = cfg.normalized()
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	n := cfg.scaled(DefaultSize, 1000)
	nq := cfg.scaled(2000, 64)
	ps := dataset.SyntheticCenters(n, DefaultDim, dataset.Gaussian, cfg.Seed)
	items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed)
	tree := sstree.New(DefaultDim)
	for _, it := range items {
		tree.Insert(it)
	}
	tree.Freeze()
	idx := knn.WrapSSTree(tree)
	queries := workload.KNNQueries(items, nq, cfg.Seed+99)

	res := ParallelResult{Items: n, Queries: nq, K: DefaultK, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, w := range workers {
		if w < 1 {
			w = 1
		}
		// Two runs per width, keeping the faster: the first also warms the
		// workers' scratch arenas, so the kept run measures steady state.
		var best time.Duration
		for rep := 0; rep < 2; rep++ {
			start := time.Now()
			workload.KNNBatch(idx, queries, DefaultK, w, dominance.Hyperbola{}, knn.HS)
			if el := time.Since(start); rep == 0 || el < best {
				best = el
			}
		}
		row := ParallelRow{Workers: w, OpsPerSec: float64(nq) / best.Seconds(), Scaling: 1}
		if len(res.Rows) > 0 && res.Rows[0].OpsPerSec > 0 {
			row.Scaling = row.OpsPerSec / res.Rows[0].OpsPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Table renders the worker-scaling table.
func (r ParallelResult) Table() stats.Table {
	t := stats.Table{
		Title: fmt.Sprintf("Batch engine scaling — HS(Hyper), %d items, %d queries, k=%d, GOMAXPROCS=%d",
			r.Items, r.Queries, r.K, r.GoMaxProcs),
		Header: []string{"Workers", "Queries/s", "Scaling"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.0f", row.OpsPerSec),
			fmt.Sprintf("%.2fx", row.Scaling))
	}
	return t
}
