package experiments

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.01, Seed: 42, MinTiming: time.Millisecond}
}

// TestFig8Shapes verifies the paper's qualitative claims on the μ sweep:
// every criterion except Trigonometric has perfect precision, only
// Hyperbola and Trigonometric have perfect recall, and the unsound
// criteria's recall degrades as μ grows.
func TestFig8Shapes(t *testing.T) {
	res := Fig8(tiny())
	if len(res.Rows) != len(RadiusSweep) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	assertDominanceShapes(t, res)
	// Recall of MinMax must not improve as radii fatten (Figure 8c).
	first := res.Rows[0].Metrics["MinMax"].Recall
	last := res.Rows[len(res.Rows)-1].Metrics["MinMax"].Recall
	if last > first {
		t.Errorf("MinMax recall grew with μ: %v -> %v", first, last)
	}
}

func TestFig9Shapes(t *testing.T) {
	res := Fig9(tiny())
	if len(res.Rows) != len(DimSweep) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	assertDominanceShapes(t, res)
}

func TestFig10Shapes(t *testing.T) {
	res := Fig10(tiny())
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	wantOrder := []string{"NBA", "Forest", "Color", "Texture"}
	for i, row := range res.Rows {
		if row.Label != wantOrder[i] {
			t.Errorf("row %d = %s, want %s", i, row.Label, wantOrder[i])
		}
	}
	assertDominanceShapes(t, res)
}

func TestFig11TimesGrowWithDimensionality(t *testing.T) {
	// All criteria are O(d): time at d=100 must exceed time at d=25 — a
	// 4× dimensionality gap that survives scheduler noise. Wall-clock
	// measurements under a parallel test run can still misbehave once in a
	// while, so allow one retry with a fatter timing budget.
	for attempt := 0; ; attempt++ {
		cfg := tiny()
		cfg.MinTiming = time.Duration(attempt+1) * 5 * time.Millisecond
		res := Fig11(cfg)
		if len(res.Rows) != len(HighDimSweep) {
			t.Fatalf("got %d rows", len(res.Rows))
		}
		ok := true
		for _, name := range CriterionNames() {
			lo := res.Rows[0].Metrics[name].NsPerOp
			hi := res.Rows[len(res.Rows)-1].Metrics[name].NsPerOp
			if hi <= lo {
				ok = false
				if attempt >= 2 {
					t.Errorf("%s: ns/op did not grow from d=25 (%v) to d=100 (%v)", name, lo, hi)
				}
			}
		}
		if ok || attempt >= 2 {
			return
		}
	}
}

func TestFig12AllCombosPresent(t *testing.T) {
	res := Fig12(tiny())
	want := []string{"G-G", "G-U", "U-G", "U-U"}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.Label != want[i] {
			t.Errorf("row %d = %s, want %s", i, row.Label, want[i])
		}
	}
}

func assertDominanceShapes(t *testing.T, res DomResult) {
	t.Helper()
	for _, row := range res.Rows {
		for _, name := range CriterionNames() {
			m, ok := row.Metrics[name]
			if !ok {
				t.Fatalf("%s row %s: missing criterion %s", res.Figure, row.Label, name)
			}
			if m.NsPerOp <= 0 {
				t.Errorf("%s row %s: %s ns/op = %v", res.Figure, row.Label, name, m.NsPerOp)
			}
			if name != "Trigonometric" && m.Precision != 1 {
				t.Errorf("%s row %s: %s precision = %v, want 1 (correct criterion)",
					res.Figure, row.Label, name, m.Precision)
			}
			if (name == "Hyperbola" || name == "Trigonometric") && m.Recall != 1 {
				t.Errorf("%s row %s: %s recall = %v, want 1 (sound criterion)",
					res.Figure, row.Label, name, m.Recall)
			}
		}
	}
}

func TestKnnFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("kNN experiment suite in -short mode")
	}
	cfg := tiny()
	for _, tc := range []struct {
		name string
		run  func(Config) KnnResult
		rows int
	}{
		{"Fig13", Fig13, len(RadiusSweep)},
		{"Fig14", Fig14, len(KSweep)},
		{"Fig15", Fig15, len(SizeSweep)},
		{"Fig16", Fig16, len(DimSweep)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res := tc.run(cfg)
			if len(res.Rows) != tc.rows {
				t.Fatalf("got %d rows, want %d", len(res.Rows), tc.rows)
			}
			for _, row := range res.Rows {
				for _, v := range KnnVariants() {
					m, ok := row.Metrics[v.Name()]
					if !ok {
						t.Fatalf("row %s: missing variant %s", row.Label, v.Name())
					}
					if m.QueryNs <= 0 {
						t.Errorf("row %s %s: query time %v", row.Label, v.Name(), m.QueryNs)
					}
					if strings.Contains(v.Name(), "Hyper") && m.Precision != 1 {
						t.Errorf("row %s: %s precision = %v, want 1", row.Label, v.Name(), m.Precision)
					}
					if m.Precision > 1 || m.Precision <= 0 {
						t.Errorf("row %s %s: precision %v out of range", row.Label, v.Name(), m.Precision)
					}
				}
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	res := Fig8(Config{Scale: 0.005, Seed: 7, MinTiming: time.Millisecond})
	for _, tab := range []string{
		res.TimeTable().Render(),
		res.PrecisionTable().Render(),
		res.RecallTable().Render(),
	} {
		if !strings.Contains(tab, "Hyperbola") || !strings.Contains(tab, "MinMax") {
			t.Errorf("table missing criterion columns:\n%s", tab)
		}
	}
}

func TestIndexComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("index comparison in -short mode")
	}
	res := RunIndexComparison(Config{Scale: 0.02, Seed: 3})
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, name := range IndexNames() {
			m, ok := row.Metrics[name]
			if !ok {
				t.Fatalf("d=%d missing index %s", row.Dim, name)
			}
			if m.Nodes <= 0 || m.QueryNs <= 0 {
				t.Errorf("d=%d %s: non-positive metrics %+v", row.Dim, name, m)
			}
		}
	}
	// The headline claim: at the highest dimensionality the sphere tree
	// visits fewer nodes than the rectangle tree.
	last := res.Rows[len(res.Rows)-1]
	if last.Metrics["SS-tree"].Nodes >= last.Metrics["R-tree"].Nodes {
		t.Errorf("d=%d: SS-tree %.0f nodes vs R-tree %.0f; expected the sphere tree to win",
			last.Dim, last.Metrics["SS-tree"].Nodes, last.Metrics["R-tree"].Nodes)
	}
	if !strings.Contains(res.Table().Render(), "SS-tree nodes") {
		t.Error("table rendering broken")
	}
}

func TestKnnVariantNames(t *testing.T) {
	names := map[string]bool{}
	for _, v := range KnnVariants() {
		names[v.Name()] = true
	}
	for _, want := range []string{
		"HS(Hyper)", "HS(MinMax)", "HS(MBR)", "HS(GP)",
		"DF(Hyper)", "DF(MinMax)", "DF(MBR)", "DF(GP)",
	} {
		if !names[want] {
			t.Errorf("missing variant %s", want)
		}
	}
}
