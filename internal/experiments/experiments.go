// Package experiments reproduces every figure of the paper's evaluation
// (Section 7): Figures 8–12 for the dominance operator and Figures 13–16
// for the kNN query. Each runner returns a structured result that the CLI
// tools render as text tables and the benchmark harness asserts shapes on.
//
// The paper's full workload (datasets of 100k+ spheres, 10,000 queries per
// point) is reachable with Scale = 1; the default used by tests and
// benchmarks shrinks cardinalities proportionally while keeping every sweep
// point, so the qualitative shapes — who wins, how precision and recall
// degrade — are preserved at a fraction of the runtime.
package experiments

import (
	"fmt"
	"time"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/stats"
	"hyperdom/internal/workload"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale multiplies dataset sizes and query counts; 1 reproduces the
	// paper's cardinalities. Values ≤ 0 default to 0.05.
	Scale float64
	// Seed drives all random generation.
	Seed int64
	// MinTiming is the per-criterion timing budget for dominance
	// experiments; longer budgets tighten the per-op estimates. Defaults to
	// 20ms.
	MinTiming time.Duration
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinTiming <= 0 {
		c.MinTiming = 20 * time.Millisecond
	}
	return c
}

// scaled returns base scaled down, with a floor to keep workloads
// meaningful.
func (c Config) scaled(base, floor int) int {
	n := int(float64(base) * c.Scale)
	if n < floor {
		n = floor
	}
	if n > base {
		n = base
	}
	return n
}

// Table 2 of the paper: parameter settings, defaults in bold.
var (
	RadiusSweep = []float64{5, 10, 50, 100}
	SizeSweep   = []int{20000, 60000, 100000, 140000, 180000}
	DimSweep    = []int{2, 4, 6, 8, 10}
	KSweep      = []int{1, 10, 20, 30}

	DefaultRadius = 50.0
	DefaultSize   = 100000
	DefaultDim    = 6
	DefaultK      = 10
)

// HighDimSweep is the Figure 11 dimensionality sweep.
var HighDimSweep = []int{25, 50, 75, 100}

// DomMetrics are the three measures of Figures 8–10 for one criterion.
type DomMetrics struct {
	NsPerOp   float64
	Precision float64 // 1 means no false positives on the workload
	Recall    float64 // 1 means no false negatives on the workload
}

// DomRow is one sweep point of a dominance experiment.
type DomRow struct {
	Label   string
	Metrics map[string]DomMetrics // keyed by criterion name
}

// DomResult is one dominance figure.
type DomResult struct {
	Figure  string
	Sweep   string
	Rows    []DomRow
	Queries int
}

// CriterionNames lists the five criteria in the paper's plotting order.
func CriterionNames() []string {
	names := make([]string, 0, 5)
	for _, c := range dominance.All() {
		names = append(names, c.Name())
	}
	return names
}

// runDominance measures all five criteria over one workload drawn from the
// items. Ground truth is the Hyperbola criterion, per Section 7.1.
func runDominance(items []geom.Item, queries int, seed int64, minTiming time.Duration) map[string]DomMetrics {
	w := workload.Dominance(items, queries, seed)
	truth := workload.Verdicts(dominance.Hyperbola{}, w)
	out := make(map[string]DomMetrics, 5)
	for _, crit := range dominance.All() {
		verdicts := workload.Verdicts(crit, w)
		acc := workload.Compare(verdicts, truth)
		per := workload.TimePerOp(crit, w, minTiming)
		out[crit.Name()] = DomMetrics{
			NsPerOp:   float64(per.Nanoseconds()),
			Precision: acc.Precision(),
			Recall:    acc.Recall(),
		}
	}
	return out
}

// Fig8 — effects of the average radius μ on the (simulated) NBA dataset:
// execution time, precision and recall for the five criteria.
func Fig8(cfg Config) DomResult {
	cfg = cfg.normalized()
	nba := dataset.NBA().Sample(cfg.scaled(17265, 500), cfg.Seed)
	queries := cfg.scaled(10000, 500)
	res := DomResult{Figure: "Figure 8 (NBA)", Sweep: "Ave. radius", Queries: queries}
	for _, mu := range RadiusSweep {
		items := dataset.Spheres(nba, dataset.GaussianRadii(mu), cfg.Seed+int64(mu))
		res.Rows = append(res.Rows, DomRow{
			Label:   fmt.Sprintf("%g", mu),
			Metrics: runDominance(items, queries, cfg.Seed, cfg.MinTiming),
		})
	}
	return res
}

// Fig9 — effects of the dimensionality d on synthetic data.
func Fig9(cfg Config) DomResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	queries := cfg.scaled(10000, 500)
	res := DomResult{Figure: "Figure 9 (Synthetic)", Sweep: "Dimensionality", Queries: queries}
	for _, d := range DimSweep {
		ps := dataset.SyntheticCenters(n, d, dataset.Gaussian, cfg.Seed+int64(d))
		items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed+int64(d))
		res.Rows = append(res.Rows, DomRow{
			Label:   fmt.Sprintf("%d", d),
			Metrics: runDominance(items, queries, cfg.Seed, cfg.MinTiming),
		})
	}
	return res
}

// Fig10 — the four real datasets at the default radius.
func Fig10(cfg Config) DomResult {
	cfg = cfg.normalized()
	queries := cfg.scaled(10000, 500)
	res := DomResult{Figure: "Figure 10 (Real datasets)", Sweep: "Dataset", Queries: queries}
	for _, ps := range dataset.Real() {
		sample := ps.Sample(cfg.scaled(len(ps.Points), 500), cfg.Seed)
		items := dataset.Spheres(sample, dataset.GaussianRadii(DefaultRadius), cfg.Seed)
		res.Rows = append(res.Rows, DomRow{
			Label:   ps.Name,
			Metrics: runDominance(items, queries, cfg.Seed, cfg.MinTiming),
		})
	}
	return res
}

// Fig11 — execution time in high-dimensional space (d ∈ {25,50,75,100}).
func Fig11(cfg Config) DomResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	queries := cfg.scaled(10000, 500)
	res := DomResult{Figure: "Figure 11 (High dimensionality)", Sweep: "Dimensionality", Queries: queries}
	for _, d := range HighDimSweep {
		ps := dataset.SyntheticCenters(n, d, dataset.Gaussian, cfg.Seed+int64(d))
		items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed+int64(d))
		res.Rows = append(res.Rows, DomRow{
			Label:   fmt.Sprintf("%d", d),
			Metrics: runDominance(items, queries, cfg.Seed, cfg.MinTiming),
		})
	}
	return res
}

// Fig12 — execution time under the four center/radius distribution
// combinations G-G, G-U, U-G, U-U.
func Fig12(cfg Config) DomResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	queries := cfg.scaled(10000, 500)
	res := DomResult{Figure: "Figure 12 (Distributions)", Sweep: "Distribution", Queries: queries}
	combos := []struct {
		centers dataset.Distribution
		radii   dataset.RadiusSpec
	}{
		{dataset.Gaussian, dataset.GaussianRadii(DefaultRadius)},
		{dataset.Gaussian, dataset.UniformRadii(0, 200)},
		{dataset.Uniform, dataset.GaussianRadii(DefaultRadius)},
		{dataset.Uniform, dataset.UniformRadii(0, 200)},
	}
	labels := []string{"G-G", "G-U", "U-G", "U-U"}
	for i, combo := range combos {
		ps := dataset.SyntheticCenters(n, DefaultDim, combo.centers, cfg.Seed+int64(i))
		items := dataset.Spheres(ps, combo.radii, cfg.Seed+int64(i))
		res.Rows = append(res.Rows, DomRow{
			Label:   labels[i],
			Metrics: runDominance(items, queries, cfg.Seed, cfg.MinTiming),
		})
	}
	return res
}

// TimeTable renders the execution-time panel of a dominance figure.
func (r DomResult) TimeTable() stats.Table {
	return r.table("execution time (ns/op)", func(m DomMetrics) string {
		return fmt.Sprintf("%.0f", m.NsPerOp)
	})
}

// PrecisionTable renders the precision panel.
func (r DomResult) PrecisionTable() stats.Table {
	return r.table("precision (%)", func(m DomMetrics) string {
		return fmt.Sprintf("%.1f", m.Precision*100)
	})
}

// RecallTable renders the recall panel.
func (r DomResult) RecallTable() stats.Table {
	return r.table("recall (%)", func(m DomMetrics) string {
		return fmt.Sprintf("%.1f", m.Recall*100)
	})
}

func (r DomResult) table(metric string, format func(DomMetrics) string) stats.Table {
	t := stats.Table{
		Title:  fmt.Sprintf("%s — %s (%d queries/point)", r.Figure, metric, r.Queries),
		Header: append([]string{r.Sweep}, CriterionNames()...),
	}
	for _, row := range r.Rows {
		cells := []string{row.Label}
		for _, name := range CriterionNames() {
			cells = append(cells, format(row.Metrics[name]))
		}
		t.AddRow(cells...)
	}
	return t
}
