package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
	"hyperdom/internal/stats"
)

// KnnVariant is one of the eight algorithm/criterion combinations the
// paper's kNN figures plot: {HS, DF} × {Hyper, MinMax, MBR, GP}.
// Trigonometric is excluded because it is not correct and could miss true
// answers, exactly as Section 7.2 explains.
type KnnVariant struct {
	Algo knn.Algorithm
	Crit dominance.Criterion
}

// Name returns the paper's label, e.g. "HS(Hyper)".
func (v KnnVariant) Name() string {
	short := v.Crit.Name()
	if short == "Hyperbola" {
		short = "Hyper"
	}
	return fmt.Sprintf("%s(%s)", v.Algo, short)
}

// KnnVariants returns the eight variants in the paper's plotting order.
func KnnVariants() []KnnVariant {
	criteria := []dominance.Criterion{
		dominance.Hyperbola{}, dominance.MinMax{}, dominance.MBR{}, dominance.GP{},
	}
	var out []KnnVariant
	for _, algo := range []knn.Algorithm{knn.HS, knn.DF} {
		for _, c := range criteria {
			out = append(out, KnnVariant{Algo: algo, Crit: c})
		}
	}
	return out
}

// KnnMetrics are the two measures of Figures 13–16 for one variant.
type KnnMetrics struct {
	QueryNs   float64 // mean wall time per kNN query
	Precision float64 // correctly returned / returned, vs Definition 2 truth
}

// KnnRow is one sweep point of a kNN experiment.
type KnnRow struct {
	Label   string
	Metrics map[string]KnnMetrics // keyed by variant name
}

// KnnResult is one kNN figure.
type KnnResult struct {
	Figure  string
	Sweep   string
	Rows    []KnnRow
	Queries int
}

// runKnn builds an SS-tree over the items, runs the query batch through
// all eight variants, and measures time and precision against the
// Definition 2 ground truth (brute force with the optimal criterion).
func runKnn(items []geom.Item, queries []geom.Sphere, k int) map[string]KnnMetrics {
	if len(items) == 0 || len(queries) == 0 {
		panic("experiments: empty kNN workload")
	}
	dim := items[0].Sphere.Dim()
	tree := sstree.New(dim)
	for _, it := range items {
		tree.Insert(it)
	}
	idx := knn.WrapSSTree(tree)

	truths := make([]map[int]bool, len(queries))
	for i, q := range queries {
		truth := map[int]bool{}
		for _, it := range knn.BruteForce(items, q, k, dominance.Hyperbola{}).Items {
			truth[it.ID] = true
		}
		truths[i] = truth
	}

	out := make(map[string]KnnMetrics, 8)
	for _, v := range KnnVariants() {
		var correct, returned int
		start := time.Now()
		for i, q := range queries {
			res := knn.Search(idx, q, k, v.Crit, v.Algo)
			returned += len(res.Items)
			for _, it := range res.Items {
				if truths[i][it.ID] {
					correct++
				}
			}
		}
		elapsed := time.Since(start)
		prec := 1.0
		if returned > 0 {
			prec = float64(correct) / float64(returned)
		}
		out[v.Name()] = KnnMetrics{
			QueryNs:   float64(elapsed.Nanoseconds()) / float64(len(queries)),
			Precision: prec,
		}
	}
	return out
}

// knnQueries draws query hyperspheres from the data distribution.
func knnQueries(n, dim int, mu float64, seed int64) []geom.Sphere {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Sphere, n)
	for i := range out {
		c := make([]float64, dim)
		for j := range c {
			c[j] = 100 + rng.NormFloat64()*25
		}
		r := mu + rng.NormFloat64()*mu/4
		if r < 0 {
			r = 0
		}
		out[i] = geom.NewSphere(c, r)
	}
	return out
}

// Fig13 — effect of the average radius μ on kNN queries (synthetic).
func Fig13(cfg Config) KnnResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	nq := cfg.scaled(200, 5)
	res := KnnResult{Figure: "Figure 13 (kNN, synthetic)", Sweep: "Ave. radius", Queries: nq}
	for _, mu := range RadiusSweep {
		ps := dataset.SyntheticCenters(n, DefaultDim, dataset.Gaussian, cfg.Seed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(mu), cfg.Seed+int64(mu))
		queries := knnQueries(nq, DefaultDim, mu, cfg.Seed+99)
		res.Rows = append(res.Rows, KnnRow{
			Label:   fmt.Sprintf("%g", mu),
			Metrics: runKnn(items, queries, DefaultK),
		})
	}
	return res
}

// Fig14 — effect of the parameter k.
func Fig14(cfg Config) KnnResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	nq := cfg.scaled(200, 5)
	ps := dataset.SyntheticCenters(n, DefaultDim, dataset.Gaussian, cfg.Seed)
	items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed)
	queries := knnQueries(nq, DefaultDim, DefaultRadius, cfg.Seed+99)
	res := KnnResult{Figure: "Figure 14 (kNN, synthetic)", Sweep: "k", Queries: nq}
	for _, k := range KSweep {
		res.Rows = append(res.Rows, KnnRow{
			Label:   fmt.Sprintf("%d", k),
			Metrics: runKnn(items, queries, k),
		})
	}
	return res
}

// Fig15 — effect of the data size N.
func Fig15(cfg Config) KnnResult {
	cfg = cfg.normalized()
	nq := cfg.scaled(200, 5)
	res := KnnResult{Figure: "Figure 15 (kNN, synthetic)", Sweep: "Datasize", Queries: nq}
	for _, base := range SizeSweep {
		n := cfg.scaled(base, 500)
		ps := dataset.SyntheticCenters(n, DefaultDim, dataset.Gaussian, cfg.Seed+int64(base))
		items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed+int64(base))
		queries := knnQueries(nq, DefaultDim, DefaultRadius, cfg.Seed+99)
		res.Rows = append(res.Rows, KnnRow{
			Label:   fmt.Sprintf("%dk", base/1000),
			Metrics: runKnn(items, queries, DefaultK),
		})
	}
	return res
}

// Fig16 — effect of the dimensionality d.
func Fig16(cfg Config) KnnResult {
	cfg = cfg.normalized()
	n := cfg.scaled(DefaultSize, 1000)
	nq := cfg.scaled(200, 5)
	res := KnnResult{Figure: "Figure 16 (kNN, synthetic)", Sweep: "Dimensionality", Queries: nq}
	for _, d := range DimSweep {
		ps := dataset.SyntheticCenters(n, d, dataset.Gaussian, cfg.Seed+int64(d))
		items := dataset.Spheres(ps, dataset.GaussianRadii(DefaultRadius), cfg.Seed+int64(d))
		queries := knnQueries(nq, d, DefaultRadius, cfg.Seed+99)
		res.Rows = append(res.Rows, KnnRow{
			Label:   fmt.Sprintf("%d", d),
			Metrics: runKnn(items, queries, DefaultK),
		})
	}
	return res
}

// TimeTable renders the query-time panel of a kNN figure.
func (r KnnResult) TimeTable() stats.Table {
	return r.table("query time (ms)", func(m KnnMetrics) string {
		return fmt.Sprintf("%.2f", m.QueryNs/1e6)
	})
}

// PrecisionTable renders the precision panel.
func (r KnnResult) PrecisionTable() stats.Table {
	return r.table("precision (%)", func(m KnnMetrics) string {
		return fmt.Sprintf("%.1f", m.Precision*100)
	})
}

func (r KnnResult) table(metric string, format func(KnnMetrics) string) stats.Table {
	var names []string
	for _, v := range KnnVariants() {
		names = append(names, v.Name())
	}
	t := stats.Table{
		Title:  fmt.Sprintf("%s — %s (%d queries/point)", r.Figure, metric, r.Queries),
		Header: append([]string{r.Sweep}, names...),
	}
	for _, row := range r.Rows {
		cells := []string{row.Label}
		for _, name := range names {
			cells = append(cells, format(row.Metrics[name]))
		}
		t.AddRow(cells...)
	}
	return t
}
