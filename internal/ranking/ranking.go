// Package ranking implements the inverse ranking query over hypersphere
// databases, the fourth application of the dominance operator the paper
// names (Sections 1 and 6, ref [21, 23]): given a ranking anchor R (the
// sphere whose vantage defines "closer"), determine which ranks the query
// object Sq can take among the database objects when all objects are
// uncertain.
//
// An object S certainly ranks before Sq iff Dom(S, Sq, R), and certainly
// after iff Dom(Sq, S, R); everything else is undecided, so the possible
// ranks of Sq form the interval
//
//	[ 1 + #certainly-before ,  N + 1 − #certainly-after ]
//
// With the Exact or Hyperbola criterion the interval is tight (every rank
// inside it is attainable by some realisation of the uncertain objects
// deciding each undecided comparison either way); with a merely correct
// criterion fewer comparisons are certified and the interval can only
// widen — never exclude a feasible rank.
package ranking

import (
	"fmt"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

// Item is the database unit, shared with the index packages.
type Item = geom.Item

// Interval is an inclusive range of attainable ranks (1-based).
type Interval struct {
	Lo, Hi int
}

// Contains reports whether rank r lies in the interval.
func (iv Interval) Contains(r int) bool { return iv.Lo <= r && r <= iv.Hi }

// Width returns the number of attainable ranks.
func (iv Interval) Width() int { return iv.Hi - iv.Lo + 1 }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi) }

// Result carries the rank interval and the per-object classification.
type Result struct {
	Ranks Interval
	// Before, After and Undecided count the database objects that
	// certainly rank before Sq, certainly after, and neither.
	Before, After, Undecided int
	// DomChecks counts criterion invocations.
	DomChecks int
}

// Rank computes the attainable ranks of query among items from the vantage
// of anchor, using the given dominance criterion for both certainty
// directions.
func Rank(items []Item, query, anchor geom.Sphere, crit dominance.Criterion) Result {
	var res Result
	for _, s := range items {
		res.DomChecks += 2
		switch {
		case crit.Dominates(s.Sphere, query, anchor):
			res.Before++
		case crit.Dominates(query, s.Sphere, anchor):
			res.After++
		default:
			res.Undecided++
		}
	}
	res.Ranks = Interval{
		Lo: 1 + res.Before,
		Hi: len(items) + 1 - res.After,
	}
	return res
}
