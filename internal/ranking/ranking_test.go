package ranking

import (
	"math/rand"
	"testing"

	"hyperdom/internal/dominance"
	"hyperdom/internal/geom"
)

func pt(x, y float64) geom.Sphere { return geom.NewSphere([]float64{x, y}, 0) }

// TestRankPointsExact: with point objects and a point anchor, every
// comparison is decided, so the interval collapses to the true rank.
func TestRankPointsExact(t *testing.T) {
	var items []Item
	for i, x := range []float64{1, 2, 4, 8} {
		items = append(items, Item{Sphere: pt(x, 0), ID: i})
	}
	anchor := pt(0, 0)
	res := Rank(items, pt(3, 0), anchor, dominance.Exact{})
	if res.Ranks != (Interval{3, 3}) {
		t.Errorf("ranks = %v, want [3, 3]", res.Ranks)
	}
	if res.Before != 2 || res.After != 2 || res.Undecided != 0 {
		t.Errorf("classification %d/%d/%d", res.Before, res.After, res.Undecided)
	}
}

// TestRankUncertaintyWidens: inflating the query's radius turns decided
// comparisons into undecided ones and can only widen the interval.
func TestRankUncertaintyWidens(t *testing.T) {
	var items []Item
	for i, x := range []float64{1, 2, 4, 8} {
		items = append(items, Item{Sphere: pt(x, 0), ID: i})
	}
	anchor := pt(0, 0)
	prev := Rank(items, geom.NewSphere([]float64{3, 0}, 0), anchor, dominance.Exact{}).Ranks
	for _, r := range []float64{0.4, 0.9, 2.5, 6} {
		cur := Rank(items, geom.NewSphere([]float64{3, 0}, r), anchor, dominance.Exact{}).Ranks
		if cur.Lo > prev.Lo || cur.Hi < prev.Hi {
			t.Fatalf("radius %v narrowed the interval: %v -> %v", r, prev, cur)
		}
		prev = cur
	}
	// At radius 6 the query straddles everything: full interval.
	if prev != (Interval{1, 5}) {
		t.Errorf("fully uncertain query ranks = %v, want [1, 5]", prev)
	}
}

// TestWeakerCriterionWidens: a correct-but-unsound criterion certifies
// fewer comparisons, so its interval must contain the exact one.
func TestWeakerCriterionWidens(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(5)
		items := make([]Item, 60)
		for i := range items {
			items[i] = Item{Sphere: randSphere(rng, d), ID: i}
		}
		query := randSphere(rng, d)
		anchor := randSphere(rng, d)
		exact := Rank(items, query, anchor, dominance.Hyperbola{}).Ranks
		for _, crit := range []dominance.Criterion{dominance.MinMax{}, dominance.MBR{}, dominance.GP{}} {
			weak := Rank(items, query, anchor, crit).Ranks
			if weak.Lo > exact.Lo || weak.Hi < exact.Hi {
				t.Fatalf("trial %d: %s interval %v excludes exact %v", trial, crit.Name(), weak, exact)
			}
		}
	}
}

// TestRankSanity: the interval is always within [1, N+1] and non-empty.
func TestRankSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(40)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Sphere: randSphere(rng, d), ID: i}
		}
		res := Rank(items, randSphere(rng, d), randSphere(rng, d), dominance.Hyperbola{})
		if res.Ranks.Lo < 1 || res.Ranks.Hi > n+1 || res.Ranks.Lo > res.Ranks.Hi {
			t.Fatalf("trial %d: interval %v out of bounds for n=%d", trial, res.Ranks, n)
		}
		if res.Before+res.After+res.Undecided != n {
			t.Fatalf("trial %d: classification does not partition the database", trial)
		}
		if !res.Ranks.Contains(res.Ranks.Lo) || res.Ranks.Width() != res.Ranks.Hi-res.Ranks.Lo+1 {
			t.Fatal("Interval helpers inconsistent")
		}
	}
}

func TestIntervalString(t *testing.T) {
	if (Interval{2, 5}).String() != "[2, 5]" {
		t.Errorf("String = %s", Interval{2, 5})
	}
}

// TestRankEmptyDatabase: the only rank is 1.
func TestRankEmptyDatabase(t *testing.T) {
	res := Rank(nil, pt(0, 0), pt(1, 1), dominance.Exact{})
	if res.Ranks != (Interval{1, 1}) {
		t.Errorf("ranks = %v, want [1, 1]", res.Ranks)
	}
}

func randSphere(rng *rand.Rand, d int) geom.Sphere {
	c := make([]float64, d)
	for i := range c {
		c[i] = rng.NormFloat64() * 10
	}
	return geom.NewSphere(c, rng.Float64()*3)
}
