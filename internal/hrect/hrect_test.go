package hrect

import (
	"math/rand"
	"testing"

	"hyperdom/internal/geom"
	"hyperdom/internal/vec"
)

func mkRect(lo, hi []float64) geom.Rect { return geom.NewRect(lo, hi) }

func randRect(rng *rand.Rand, d int, scale float64) geom.Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for i := range lo {
		a := rng.NormFloat64() * scale
		b := a + rng.Float64()*scale/2
		lo[i], hi[i] = a, b
	}
	return geom.NewRect(lo, hi)
}

func TestMinMaxHandCases(t *testing.T) {
	ra := mkRect([]float64{0, 0}, []float64{1, 1})
	rb := mkRect([]float64{10, 0}, []float64{11, 1})
	rq := mkRect([]float64{-2, 0}, []float64{-1, 1})
	if !MinMax(ra, rb, rq) {
		t.Error("clear dominance not detected by MinMax")
	}
	// Fat query reaching past the midpoint: MinMax must refuse.
	rqFat := mkRect([]float64{-2, 0}, []float64{6, 1})
	if MinMax(ra, rb, rqFat) {
		t.Error("MinMax accepted with a query box reaching near Rb")
	}
}

func TestOptimalEqualsCornerExhaustive(t *testing.T) {
	// The O(d) criterion must agree exactly with the exponential
	// corner-based one (both are correct and sound for rectangles).
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 2, 3, 4, 5, 6} {
		for i := 0; i < 4000; i++ {
			ra := randRect(rng, d, 5)
			rb := randRect(rng, d, 5)
			rq := randRect(rng, d, 5)
			if Optimal(ra, rb, rq) != Corner(ra, rb, rq) {
				t.Fatalf("d=%d: Optimal=%v Corner=%v\nra=%v\nrb=%v\nrq=%v",
					d, Optimal(ra, rb, rq), Corner(ra, rb, rq), ra, rb, rq)
			}
		}
	}
}

func TestMinMaxImpliesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		d := 1 + rng.Intn(5)
		ra := randRect(rng, d, 5)
		rb := randRect(rng, d, 5)
		rq := randRect(rng, d, 5)
		if MinMax(ra, rb, rq) && !Optimal(ra, rb, rq) {
			t.Fatalf("MinMax true but Optimal false\nra=%v\nrb=%v\nrq=%v", ra, rb, rq)
		}
	}
}

// TestOptimalAgainstSampling: when Optimal says true, no sampled triple
// (a, b, q) may violate Dist(a,q) < Dist(b,q); when it says false, some
// query point q must have MaxDist(Ra,q) ≥ MinDist(Rb,q).
func TestOptimalAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samplePt := func(r geom.Rect) []float64 {
		p := make([]float64, r.Dim())
		for i := range p {
			p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
		}
		return p
	}
	for i := 0; i < 3000; i++ {
		d := 1 + rng.Intn(4)
		ra := randRect(rng, d, 5)
		rb := randRect(rng, d, 5)
		rq := randRect(rng, d, 5)
		got := Optimal(ra, rb, rq)
		if got {
			for s := 0; s < 30; s++ {
				a, b, q := samplePt(ra), samplePt(rb), samplePt(rq)
				if vec.Dist(a, q) >= vec.Dist(b, q) {
					t.Fatalf("Optimal=true refuted by sample a=%v b=%v q=%v\nra=%v rb=%v rq=%v",
						a, b, q, ra, rb, rq)
				}
			}
		} else {
			// Soundness spot-check: scan corner points of rq plus random
			// samples for a violation witness.
			witness := false
			for _, q := range rq.Corners() {
				if geom.MaxDistRect(ra, geom.NewRect(q, q)) >= geom.MinDistRect(rb, geom.NewRect(q, q)) {
					witness = true
					break
				}
			}
			if !witness {
				for s := 0; s < 200 && !witness; s++ {
					q := samplePt(rq)
					qr := geom.NewRect(q, q)
					if geom.MaxDistRect(ra, qr) >= geom.MinDistRect(rb, qr) {
						witness = true
					}
				}
			}
			if !witness {
				t.Fatalf("Optimal=false but no witness found\nra=%v rb=%v rq=%v", ra, rb, rq)
			}
		}
	}
}

func TestGMax1DEndpoints(t *testing.T) {
	// g's maximum over [ql,qh] must match a dense scan.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		al := rng.NormFloat64() * 5
		ah := al + rng.Float64()*5
		bl := rng.NormFloat64() * 5
		bh := bl + rng.Float64()*5
		ql := rng.NormFloat64() * 5
		qh := ql + rng.Float64()*5
		got := GMax1D(al, ah, bl, bh, ql, qh)
		g := func(q float64) float64 {
			maxd := q - al
			if d := ah - q; d > maxd {
				maxd = d
			}
			var mind float64
			switch {
			case q < bl:
				mind = bl - q
			case q > bh:
				mind = q - bh
			}
			return maxd*maxd - mind*mind
		}
		const steps = 500
		want := g(ql)
		for s := 1; s <= steps; s++ {
			q := ql + (qh-ql)*float64(s)/steps
			if v := g(q); v > want {
				want = v
			}
		}
		if got < want-1e-9 {
			t.Fatalf("GMax1D=%v but scan found %v (al=%v ah=%v bl=%v bh=%v ql=%v qh=%v)",
				got, want, al, ah, bl, bh, ql, qh)
		}
	}
}
