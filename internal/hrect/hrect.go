// Package hrect implements spatial-dominance decision criteria for
// axis-aligned hyperrectangles, following Emrich et al., "Boosting spatial
// pruning: on optimal pruning of MBRs" (SIGMOD 2010) — reference [14] of the
// hypersphere-dominance paper.
//
// Dominance for rectangles mirrors Definition 1 of the paper:
// Ra dominates Rb wrt Rq iff ∀q ∈ Rq, ∀a ∈ Ra, ∀b ∈ Rb:
// Dist(a,q) < Dist(b,q), or equivalently
// ∀q ∈ Rq: MaxDist(Ra,q) < MinDist(Rb,q).
//
// Three criteria are provided:
//
//   - MinMax:  correct, not sound, O(d)
//   - Corner:  correct and sound, O(d·2^d)
//   - Optimal: correct and sound, O(d) — the "DDC-optimal" criterion the
//     sphere MBR adaptation (Section 2.2 of the paper) plugs into.
//
// The decomposition behind Optimal: with q constrained to the box Rq,
//
//	max_{q∈Rq} (MaxDist(Ra,q)² − MinDist(Rb,q)²) = Σ_i max_{q_i∈Rq_i} g_i(q_i)
//
// where g_i(q) = maxdist_i(Ra_i,q)² − mindist_i(Rb_i,q)² is the per-dimension
// contribution. Each g_i is continuous and piecewise {linear, convex
// quadratic} with a derivative that is continuous everywhere except at the
// center of Ra_i, where it has a local minimum; hence the maximum over an
// interval is attained at one of the interval's two endpoints, and the whole
// criterion is O(d).
package hrect

import (
	"hyperdom/internal/geom"
)

// MinMax reports the MinMax decision criterion for rectangles:
// MaxDist(Ra,Rq) < MinDist(Rb,Rq). Correct but not sound.
func MinMax(ra, rb, rq geom.Rect) bool {
	return geom.MaxDistRect(ra, rq) < geom.MinDistRect(rb, rq)
}

// Corner reports the corner-based decision criterion: for every corner q of
// Rq, MaxDist(Ra,q) < MinDist(Rb,q). Correct and sound, but exponential in
// the dimensionality; it exists as the reference implementation that the
// O(d) Optimal criterion is validated against.
func Corner(ra, rb, rq geom.Rect) bool {
	for _, q := range rq.Corners() {
		if maxDistPoint(ra, q) >= minDistPoint(rb, q) {
			return false
		}
	}
	return true
}

// Optimal reports the DDC-optimal decision criterion: correct, sound and
// O(d).
func Optimal(ra, rb, rq geom.Rect) bool {
	var sum float64
	for i := range rq.Lo {
		sum += GMax1D(ra.Lo[i], ra.Hi[i], rb.Lo[i], rb.Hi[i], rq.Lo[i], rq.Hi[i])
	}
	return sum < 0
}

// GMax1D returns max_{q ∈ [ql,qh]} g(q) for one dimension, where
// g(q) = maxdist([al,ah], q)² − mindist([bl,bh], q)². The maximum of g over
// an interval is attained at an endpoint (see the package comment), so only
// ql and qh are evaluated. Exported so that the sphere-MBR adaptation can
// evaluate the criterion without materialising rectangles.
func GMax1D(al, ah, bl, bh, ql, qh float64) float64 {
	g := func(q float64) float64 {
		maxd := q - al
		if d := ah - q; d > maxd {
			maxd = d
		}
		var mind float64
		switch {
		case q < bl:
			mind = bl - q
		case q > bh:
			mind = q - bh
		}
		return maxd*maxd - mind*mind
	}
	m := g(ql)
	if v := g(qh); v > m {
		m = v
	}
	return m
}

func maxDistPoint(r geom.Rect, q []float64) float64 {
	var s float64
	for i, qi := range q {
		d := qi - r.Lo[i]
		if e := r.Hi[i] - qi; e > d {
			d = e
		}
		s += d * d
	}
	return sqrt(s)
}

func minDistPoint(r geom.Rect, q []float64) float64 {
	var s float64
	for i, qi := range q {
		var d float64
		switch {
		case qi < r.Lo[i]:
			d = r.Lo[i] - qi
		case qi > r.Hi[i]:
			d = qi - r.Hi[i]
		}
		s += d * d
	}
	return sqrt(s)
}
