package hrect

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkOptimalVsCorner demonstrates why the paper dismisses the
// corner-based criterion for high dimensionality (Section 2.2): the
// DDC-optimal criterion is O(d) while the corner-based one is O(d·2^d),
// despite deciding identically.
func BenchmarkOptimalVsCorner(b *testing.B) {
	for _, d := range []int{2, 8, 14} {
		rng := rand.New(rand.NewSource(int64(d)))
		type triple struct{ a, bb, q int }
		rects := make([]struct{ ra, rb, rq [2][]float64 }, 128)
		for i := range rects {
			mk := func() [2][]float64 {
				lo := make([]float64, d)
				hi := make([]float64, d)
				for j := range lo {
					a := rng.NormFloat64() * 10
					lo[j], hi[j] = a, a+rng.Float64()*5
				}
				return [2][]float64{lo, hi}
			}
			rects[i].ra, rects[i].rb, rects[i].rq = mk(), mk(), mk()
		}
		_ = triple{}
		b.Run(fmt.Sprintf("d=%d/Optimal", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := rects[i%len(rects)]
				Optimal(
					mkRect(r.ra[0], r.ra[1]),
					mkRect(r.rb[0], r.rb[1]),
					mkRect(r.rq[0], r.rq[1]),
				)
			}
		})
		b.Run(fmt.Sprintf("d=%d/Corner", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := rects[i%len(rects)]
				Corner(
					mkRect(r.ra[0], r.ra[1]),
					mkRect(r.rb[0], r.rb[1]),
					mkRect(r.rq[0], r.rq[1]),
				)
			}
		})
	}
}
