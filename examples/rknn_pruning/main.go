// Reverse kNN and top-k dominating queries: the other applications of the
// dominance operator the paper names.
//
// A delivery service opens a new pickup point (the query). Which couriers
// (uncertain positions) would have that pickup point among their k nearest
// facilities? That is the reverse-kNN query: a courier is ruled out only
// when k existing facilities *provably* dominate the new one from the
// courier's point of view.
//
// Run with: go run ./examples/rknn_pruning
package main

import (
	"fmt"
	"math/rand"

	"hyperdom"
)

func main() {
	const (
		nFacilities = 2000
		k           = 2
	)
	rng := rand.New(rand.NewSource(3))

	// Existing facilities with survey uncertainty.
	facilities := make([]hyperdom.Item, nFacilities)
	tree := hyperdom.NewSSTree(2, 0)
	for i := range facilities {
		pos := []float64{rng.Float64() * 100, rng.Float64() * 100}
		facilities[i] = hyperdom.Item{Sphere: hyperdom.NewSphere(pos, 0.1+rng.Float64()*0.5), ID: i}
		tree.Insert(facilities[i])
	}

	// The proposed new pickup point, with siting uncertainty.
	pickup := hyperdom.NewSphere([]float64{47, 53}, 1.5)
	fmt.Printf("proposed pickup at (%.0f, %.0f) ± %.1f; k = %d\n\n",
		pickup.Center[0], pickup.Center[1], pickup.Radius, k)

	// Reverse-kNN with the optimal criterion (exact) vs MinMax (superset).
	for _, crit := range []hyperdom.Criterion{hyperdom.Hyperbola(), hyperdom.MinMax()} {
		res := hyperdom.RKNN(tree, pickup, k, crit)
		fmt.Printf("%-9s: %4d facilities would see the pickup among their %d nearest (dominance checks %d)\n",
			crit.Name(), len(res.Items), k, res.Stats.DomChecks)
	}

	exact := hyperdom.RKNN(tree, pickup, k, hyperdom.Hyperbola())
	fmt.Printf("\nnearest affected facilities: ")
	for i, it := range exact.Items {
		if i == 5 {
			fmt.Printf("… (%d more)", len(exact.Items)-5)
			break
		}
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%d", it.ID)
	}
	fmt.Println()

	// Top-k dominating: which facilities are the strongest, i.e. dominate
	// the most competitors from the pickup's point of view?
	top := hyperdom.TopKDominating(facilities, pickup, 5, hyperdom.Hyperbola())
	fmt.Println("\nmost dominant facilities wrt the pickup:")
	for _, s := range top.Top {
		fmt.Printf("  facility %4d dominates %4d others (dist to pickup ∈ [%.2f, %.2f])\n",
			s.Item.ID, s.Score,
			hyperdom.MinDist(s.Item.Sphere, pickup), hyperdom.MaxDist(s.Item.Sphere, pickup))
	}
}
