// Image retrieval: similarity search in a high-dimensional feature space.
//
// Sphere-based indexes (SS-tree, M-tree) were designed for exactly this
// workload — the paper's introduction cites image and video retrieval as
// the setting where sphere trees beat rectangle trees. Feature extractors
// are noisy, so an image is modelled as a hypersphere around its feature
// vector; the kNN query returns every image that could be a top-k match.
//
// The example builds the simulated Corel Color dataset (68,040 images,
// 9-d color features), indexes it with both an SS-tree and an M-tree, and
// compares the two indexes under the same optimal criterion.
//
// Run with: go run ./examples/image_retrieval
package main

import (
	"fmt"
	"time"

	"hyperdom"
	"hyperdom/internal/dataset"
)

func main() {
	const k = 10

	fmt.Println("generating simulated Corel Color features (68,040 × 9d)…")
	ps := dataset.Color()
	// Feature noise: each image's descriptor is uncertain by a small radius.
	items := dataset.Spheres(ps, dataset.GaussianRadii(2), 11)

	ss := hyperdom.NewSSTree(ps.Dim, 0)
	mt := hyperdom.NewMTree(ps.Dim, 0)
	start := time.Now()
	for _, it := range items {
		ss.Insert(it)
	}
	fmt.Printf("SS-tree built in %v\n", time.Since(start).Round(time.Millisecond))
	start = time.Now()
	for _, it := range items {
		mt.Insert(it)
	}
	fmt.Printf("M-tree  built in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Query: an image descriptor with its own noise bound.
	query := hyperdom.NewSphere(ps.Points[4242], 3)

	type run struct {
		name string
		fn   func() hyperdom.KNNResult
	}
	runs := []run{
		{"SS-tree HS(Hyper)", func() hyperdom.KNNResult {
			return hyperdom.KNN(ss, query, k, hyperdom.Hyperbola(), hyperdom.BestFirst)
		}},
		{"SS-tree DF(Hyper)", func() hyperdom.KNNResult {
			return hyperdom.KNN(ss, query, k, hyperdom.Hyperbola(), hyperdom.DepthFirst)
		}},
		{"M-tree  HS(Hyper)", func() hyperdom.KNNResult {
			return hyperdom.KNNOverMTree(mt, query, k, hyperdom.Hyperbola(), hyperdom.BestFirst)
		}},
		{"M-tree  DF(Hyper)", func() hyperdom.KNNResult {
			return hyperdom.KNNOverMTree(mt, query, k, hyperdom.Hyperbola(), hyperdom.DepthFirst)
		}},
	}

	var first hyperdom.KNNResult
	for i, r := range runs {
		start := time.Now()
		res := r.fn()
		elapsed := time.Since(start)
		fmt.Printf("%s: %2d candidates in %8v (nodes %5d, items %6d)\n",
			r.name, len(res.Items), elapsed.Round(time.Microsecond),
			res.Stats.NodesVisited, res.Stats.Items)
		if i == 0 {
			first = res
		} else if len(res.Items) != len(first.Items) {
			fmt.Println("  WARNING: answer size differs between indexes — should be impossible")
		}
	}

	fmt.Printf("\ntop matches (image IDs): ")
	for i, it := range first.Items {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(it.ID)
	}
	fmt.Println()
}
