// Uncertain GIS: k-nearest-neighbour search over imprecise GPS positions.
//
// Each taxi reports its position with a device-dependent error bound, so a
// taxi is a hypersphere: any point inside it could be the true position. A
// rider also has an uncertain position. The kNN query of the paper's
// Definition 2 returns every taxi that could still be among the k nearest —
// no taxi that might be closest is ever pruned.
//
// The example indexes 50,000 taxis in an SS-tree and compares the pruning
// power of the optimal Hyperbola criterion against MinMax.
//
// Run with: go run ./examples/uncertain_gis
package main

import (
	"fmt"
	"math/rand"

	"hyperdom"
)

func main() {
	const (
		nTaxis = 50000
		cityKm = 40.0 // city is a 40km × 40km square
		k      = 5
	)
	rng := rand.New(rand.NewSource(7))

	// Taxis cluster around a few hotspots (airport, center, station…).
	hotspots := [][]float64{{8, 8}, {20, 25}, {33, 12}, {15, 34}}
	tree := hyperdom.NewSSTree(2, 0)
	items := make([]hyperdom.Item, nTaxis)
	for i := 0; i < nTaxis; i++ {
		h := hotspots[rng.Intn(len(hotspots))]
		pos := []float64{
			clamp(h[0]+rng.NormFloat64()*5, 0, cityKm),
			clamp(h[1]+rng.NormFloat64()*5, 0, cityKm),
		}
		gpsErr := 0.02 + rng.Float64()*0.2 // 20m to 220m of uncertainty
		items[i] = hyperdom.Item{Sphere: hyperdom.NewSphere(pos, gpsErr), ID: i}
		tree.Insert(items[i])
	}

	// A rider near the center with a coarse phone fix (±300m).
	rider := hyperdom.NewSphere([]float64{19.4, 24.1}, 0.3)
	fmt.Printf("rider at (%.1f, %.1f) ± %.0fm, requesting %d nearest taxis of %d\n\n",
		rider.Center[0], rider.Center[1], rider.Radius*1000, k, nTaxis)

	for _, strategy := range []hyperdom.SearchStrategy{hyperdom.BestFirst, hyperdom.DepthFirst} {
		for _, crit := range []hyperdom.Criterion{hyperdom.Hyperbola(), hyperdom.MinMax()} {
			res := hyperdom.KNN(tree, rider, k, crit, strategy)
			fmt.Printf("%-3v + %-9s -> %2d candidate taxis  (nodes visited %4d, dominance checks %5d)\n",
				strategy, crit.Name(), len(res.Items), res.Stats.NodesVisited, res.Stats.DomChecks)
		}
	}
	fmt.Println()

	// The Hyperbola answer is exact: every returned taxi could truly be
	// among the k nearest; everything else is provably not.
	res := hyperdom.KNN(tree, rider, k, hyperdom.Hyperbola(), hyperdom.BestFirst)
	fmt.Println("possible 5-nearest taxis (Hyperbola, exact):")
	for _, taxi := range res.Items {
		fmt.Printf("  taxi %5d at (%5.2f, %5.2f) ± %3.0fm  dist ∈ [%.3f, %.3f] km\n",
			taxi.ID, taxi.Sphere.Center[0], taxi.Sphere.Center[1], taxi.Sphere.Radius*1000,
			hyperdom.MinDist(taxi.Sphere, rider), hyperdom.MaxDist(taxi.Sphere, rider))
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
