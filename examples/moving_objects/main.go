// Moving objects: how long does a pruning decision stay valid?
//
// In moving-object databases a position fix ages: if a vehicle was at p
// with error r when last heard from, after t seconds it is somewhere in a
// sphere of radius r + v·t (v = its maximum speed). A dominance decision
// made now — "vehicle B can never be closer to the dispatcher than vehicle
// A" — therefore expires. DominanceHorizon computes exactly when, which is
// the paper's "radii change over time" future-work question.
//
// Run with: go run ./examples/moving_objects
package main

import (
	"fmt"
	"math/rand"

	"hyperdom"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// The dispatcher's own position uncertainty (a building, not a point).
	dispatcher := hyperdom.NewSphere([]float64{0, 0}, 0.05)

	// Vehicle A: recently heard from, close. Vehicle B: farther out.
	vehA := hyperdom.NewSphere([]float64{2.0, 0.5}, 0.1)
	vehB := hyperdom.NewSphere([]float64{8.0, -3.0}, 0.1)

	// Maximum speeds (km/min): how fast each uncertainty sphere inflates.
	const vA, vB, vQ = 0.8, 1.0, 0.0

	fmt.Printf("now: Dom(A, B, dispatcher) = %v\n",
		hyperdom.Dominates(vehA, vehB, dispatcher))

	horizon := hyperdom.DominanceHorizon(vehA, vehB, dispatcher, vA, vB, vQ, 60)
	fmt.Printf("the decision expires after %.2f minutes of silence\n\n", horizon)

	// Sanity check the horizon by replaying time.
	for _, tm := range []float64{0, horizon * 0.5, horizon * 0.99, horizon * 1.01} {
		at := func(s hyperdom.Sphere, v float64) hyperdom.Sphere {
			return hyperdom.NewSphere(s.Center, s.Radius+v*tm)
		}
		fmt.Printf("t=%6.2f min: radii A=%.2f B=%.2f -> Dom = %v\n",
			tm, vehA.Radius+vA*tm, vehB.Radius+vB*tm,
			hyperdom.Dominates(at(vehA, vA), at(vehB, vB), at(dispatcher, vQ)))
	}
	fmt.Println()

	// Fleet view: how long each pruning decision lives, across a random
	// fleet. Short horizons mean the dispatcher must re-poll those
	// vehicles sooner.
	fmt.Println("fleet pruning horizons (A prunes B wrt dispatcher):")
	count := 0
	for i := 0; i < 200 && count < 8; i++ {
		a := hyperdom.NewSphere([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}, 0.1)
		b := hyperdom.NewSphere([]float64{rng.NormFloat64() * 8, rng.NormFloat64() * 8}, 0.1)
		if !hyperdom.Dominates(a, b, dispatcher) {
			continue
		}
		count++
		h := hyperdom.DominanceHorizon(a, b, dispatcher, 0.8, 1.0, 0, 60)
		fmt.Printf("  A(%5.1f,%5.1f) prunes B(%5.1f,%5.1f) for %5.2f min\n",
			a.Center[0], a.Center[1], b.Center[0], b.Center[1], h)
	}
}
