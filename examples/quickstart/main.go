// Quickstart: the hypersphere dominance operator on a 2-D example,
// comparing all five decision criteria of the paper's Table 1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hyperdom"
)

func main() {
	// Two uncertain objects and an uncertain query region (think of three
	// GPS readings with error bounds).
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{9, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-4, 0}, 2)

	fmt.Println("Sa =", sa)
	fmt.Println("Sb =", sb)
	fmt.Println("Sq =", sq)
	fmt.Println()

	// The optimal verdict: is every possible position of A closer to every
	// possible query point than every possible position of B?
	fmt.Printf("Dominates(Sa, Sb, Sq) = %v\n\n", hyperdom.Dominates(sa, sb, sq))

	// All five criteria side by side. Correct = never a false positive,
	// sound = never a false negative; only Hyperbola is both.
	fmt.Println("criterion      verdict  correct  sound")
	for _, c := range hyperdom.Criteria() {
		fmt.Printf("%-14s %-8v %-8v %v\n",
			c.Name(), c.Dominates(sa, sb, sq), c.Correct(), c.Sound())
	}
	fmt.Println()

	// Fatten the query until dominance breaks, and certify the failure
	// with a witness point.
	fat := hyperdom.NewSphere([]float64{-4, 0}, 8)
	fmt.Printf("with rq = 8: Dominates = %v\n", hyperdom.Dominates(sa, sb, fat))
	if w := hyperdom.FindWitness(sa, sb, fat, 0); w != nil {
		fmt.Printf("witness: q = [%.3f %.3f], margin = %.3f (≤ 0 proves non-dominance)\n",
			w.Q[0], w.Q[1], w.Margin)
	}
}
