// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 7).
//
//	Table 1    -> BenchmarkTable1   (criterion cost at the default setting,
//	                                 with precision/recall reported)
//	Figure 8   -> BenchmarkFig08    (μ sweep, NBA)
//	Figure 9   -> BenchmarkFig09    (d sweep, synthetic)
//	Figure 10  -> BenchmarkFig10    (real datasets)
//	Figure 11  -> BenchmarkFig11    (high-d sweep)
//	Figure 12  -> BenchmarkFig12    (distribution combinations)
//	Figure 13  -> BenchmarkFig13    (kNN, μ sweep)
//	Figure 14  -> BenchmarkFig14    (kNN, k sweep)
//	Figure 15  -> BenchmarkFig15    (kNN, N sweep)
//	Figure 16  -> BenchmarkFig16    (kNN, d sweep)
//
// Each sub-benchmark is one point of the figure: ns/op is the paper's
// execution-time axis, and the precision/recall (dominance figures) or
// precision (kNN figures) axes are attached as custom metrics. Dataset
// sizes are scaled down from the paper's (see the constants below) so the
// whole harness completes in minutes; cmd/dombench and cmd/knnbench run the
// same sweeps at arbitrary scale.
package hyperdom_test

import (
	"fmt"
	"testing"

	"hyperdom/internal/dataset"
	"hyperdom/internal/dominance"
	"hyperdom/internal/experiments"
	"hyperdom/internal/geom"
	"hyperdom/internal/knn"
	"hyperdom/internal/sstree"
	"hyperdom/internal/workload"
)

const (
	benchDomDataN  = 4000 // spheres per dominance dataset (paper: 100k)
	benchWorkloadN = 2000 // dominance queries per point (paper: 10k)
	benchKnnDataN  = 4000 // spheres per kNN dataset (paper: 100k)
	benchKnnQ      = 8    // kNN queries per measurement batch
	benchSeed      = 1
)

// benchCriterion runs one dominance sub-benchmark point: ns/op over the
// workload plus precision/recall metrics vs the Hyperbola ground truth.
func benchCriterion(b *testing.B, crit dominance.Criterion, w []workload.Triple) {
	b.Helper()
	truth := workload.Verdicts(dominance.Hyperbola{}, w)
	acc := workload.Compare(workload.Verdicts(crit, w), truth)
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		t := w[i%len(w)]
		sink = crit.Dominates(t.A, t.B, t.Q) != sink
	}
	_ = sink
	b.StopTimer()
	// ReportMetric must come after ResetTimer, which clears extra metrics.
	b.ReportMetric(acc.Precision()*100, "precision%")
	b.ReportMetric(acc.Recall()*100, "recall%")
}

func domBenchSweep(b *testing.B, label string, items []geom.Item) {
	w := workload.Dominance(items, benchWorkloadN, benchSeed)
	for _, crit := range dominance.All() {
		crit := crit
		b.Run(fmt.Sprintf("%s/%s", label, crit.Name()), func(b *testing.B) {
			benchCriterion(b, crit, w)
		})
	}
}

// BenchmarkTable1 measures the five criteria at the default synthetic
// setting (d=6, μ=50), attaching precision/recall — the empirical Table 1.
func BenchmarkTable1(b *testing.B) {
	ps := dataset.SyntheticCenters(benchDomDataN, experiments.DefaultDim, dataset.Gaussian, benchSeed)
	items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
	domBenchSweep(b, "default", items)
}

// BenchmarkFig08 — effects of the average radius μ on (simulated) NBA.
func BenchmarkFig08(b *testing.B) {
	nba := dataset.NBA().Sample(benchDomDataN, benchSeed)
	for _, mu := range experiments.RadiusSweep {
		items := dataset.Spheres(nba, dataset.GaussianRadii(mu), benchSeed)
		domBenchSweep(b, fmt.Sprintf("mu=%g", mu), items)
	}
}

// BenchmarkFig09 — effects of the dimensionality d (synthetic).
func BenchmarkFig09(b *testing.B) {
	for _, d := range experiments.DimSweep {
		ps := dataset.SyntheticCenters(benchDomDataN, d, dataset.Gaussian, benchSeed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
		domBenchSweep(b, fmt.Sprintf("d=%d", d), items)
	}
}

// BenchmarkFig10 — the four real datasets.
func BenchmarkFig10(b *testing.B) {
	for _, ps := range dataset.Real() {
		sample := ps.Sample(benchDomDataN, benchSeed)
		items := dataset.Spheres(sample, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
		domBenchSweep(b, ps.Name, items)
	}
}

// BenchmarkFig11 — execution time in high-dimensional space.
func BenchmarkFig11(b *testing.B) {
	for _, d := range experiments.HighDimSweep {
		ps := dataset.SyntheticCenters(benchDomDataN, d, dataset.Gaussian, benchSeed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
		domBenchSweep(b, fmt.Sprintf("d=%d", d), items)
	}
}

// BenchmarkFig12 — center/radius distribution combinations.
func BenchmarkFig12(b *testing.B) {
	combos := []struct {
		label   string
		centers dataset.Distribution
		radii   dataset.RadiusSpec
	}{
		{"G-G", dataset.Gaussian, dataset.GaussianRadii(experiments.DefaultRadius)},
		{"G-U", dataset.Gaussian, dataset.UniformRadii(0, 200)},
		{"U-G", dataset.Uniform, dataset.GaussianRadii(experiments.DefaultRadius)},
		{"U-U", dataset.Uniform, dataset.UniformRadii(0, 200)},
	}
	for _, combo := range combos {
		ps := dataset.SyntheticCenters(benchDomDataN, experiments.DefaultDim, combo.centers, benchSeed)
		items := dataset.Spheres(ps, combo.radii, benchSeed)
		domBenchSweep(b, combo.label, items)
	}
}

// knnBenchPoint runs one kNN sub-benchmark point: per-query wall time with
// the precision metric attached.
func knnBenchPoint(b *testing.B, items []geom.Item, queries []geom.Sphere, k int) {
	dim := items[0].Sphere.Dim()
	tree := sstree.New(dim)
	for _, it := range items {
		tree.Insert(it)
	}
	idx := knn.WrapSSTree(tree)

	truths := make([]map[int]bool, len(queries))
	for i, q := range queries {
		m := map[int]bool{}
		for _, it := range knn.BruteForce(items, q, k, dominance.Hyperbola{}).Items {
			m[it.ID] = true
		}
		truths[i] = m
	}

	for _, v := range experiments.KnnVariants() {
		v := v
		b.Run(v.Name(), func(b *testing.B) {
			var correct, returned int
			for i, q := range queries {
				res := knn.Search(idx, q, k, v.Crit, v.Algo)
				returned += len(res.Items)
				for _, it := range res.Items {
					if truths[i][it.ID] {
						correct++
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				res := knn.Search(idx, q, k, v.Crit, v.Algo)
				if len(res.Items) < 0 {
					b.Fatal("impossible")
				}
			}
			b.StopTimer()
			if returned > 0 {
				b.ReportMetric(float64(correct)/float64(returned)*100, "precision%")
			}
		})
	}
}

func knnQueries(n, dim int, mu float64) []geom.Sphere {
	ps := dataset.SyntheticCenters(n, dim, dataset.Gaussian, benchSeed+77)
	items := dataset.Spheres(ps, dataset.GaussianRadii(mu), benchSeed+78)
	out := make([]geom.Sphere, n)
	for i, it := range items {
		out[i] = it.Sphere
	}
	return out
}

// BenchmarkFig13 — kNN, μ sweep.
func BenchmarkFig13(b *testing.B) {
	for _, mu := range experiments.RadiusSweep {
		ps := dataset.SyntheticCenters(benchKnnDataN, experiments.DefaultDim, dataset.Gaussian, benchSeed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(mu), benchSeed)
		queries := knnQueries(benchKnnQ, experiments.DefaultDim, mu)
		b.Run(fmt.Sprintf("mu=%g", mu), func(b *testing.B) {
			knnBenchPoint(b, items, queries, experiments.DefaultK)
		})
	}
}

// BenchmarkFig14 — kNN, k sweep.
func BenchmarkFig14(b *testing.B) {
	ps := dataset.SyntheticCenters(benchKnnDataN, experiments.DefaultDim, dataset.Gaussian, benchSeed)
	items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
	queries := knnQueries(benchKnnQ, experiments.DefaultDim, experiments.DefaultRadius)
	for _, k := range experiments.KSweep {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			knnBenchPoint(b, items, queries, k)
		})
	}
}

// BenchmarkFig15 — kNN, data size sweep (scaled to 1/25 of the paper's).
func BenchmarkFig15(b *testing.B) {
	for _, base := range experiments.SizeSweep {
		n := base / 25
		ps := dataset.SyntheticCenters(n, experiments.DefaultDim, dataset.Gaussian, benchSeed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
		queries := knnQueries(benchKnnQ, experiments.DefaultDim, experiments.DefaultRadius)
		b.Run(fmt.Sprintf("N=%dk", base/1000), func(b *testing.B) {
			knnBenchPoint(b, items, queries, experiments.DefaultK)
		})
	}
}

// BenchmarkFig16 — kNN, dimensionality sweep.
func BenchmarkFig16(b *testing.B) {
	for _, d := range experiments.DimSweep {
		ps := dataset.SyntheticCenters(benchKnnDataN, d, dataset.Gaussian, benchSeed)
		items := dataset.Spheres(ps, dataset.GaussianRadii(experiments.DefaultRadius), benchSeed)
		queries := knnQueries(benchKnnQ, d, experiments.DefaultRadius)
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			knnBenchPoint(b, items, queries, experiments.DefaultK)
		})
	}
}
