package hyperdom_test

import (
	"fmt"

	"hyperdom"
)

// The basic dominance decision: can object B ever be closer to the query
// than object A?
func ExampleDominates() {
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{9, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-4, 0}, 2)
	fmt.Println(hyperdom.Dominates(sa, sb, sq))
	fmt.Println(hyperdom.Dominates(sb, sa, sq))
	// Output:
	// true
	// false
}

// Comparing all five criteria of the paper's Table 1 on one instance.
func ExampleCriteria() {
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{6, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-1, 0}, 3.5)
	for _, c := range hyperdom.Criteria() {
		fmt.Printf("%s: correct=%v sound=%v verdict=%v\n",
			c.Name(), c.Correct(), c.Sound(), c.Dominates(sa, sb, sq))
	}
	// Output:
	// MinMax: correct=true sound=false verdict=false
	// MBR: correct=true sound=false verdict=false
	// GP: correct=true sound=false verdict=false
	// Trigonometric: correct=false sound=true verdict=false
	// Hyperbola: correct=true sound=true verdict=false
}

// A witness point certifies non-dominance.
func ExampleFindWitness() {
	sa := hyperdom.NewSphere([]float64{0, 0}, 1)
	sb := hyperdom.NewSphere([]float64{6, 0}, 1)
	sq := hyperdom.NewSphere([]float64{-1, 0}, 3.5)
	w := hyperdom.FindWitness(sa, sb, sq, 0)
	fmt.Println(w != nil && w.Margin <= 0)
	// Output:
	// true
}

// Index-backed kNN: every object that could be among the k nearest.
func ExampleKNN() {
	tree := hyperdom.NewSSTree(1, 0)
	for i, x := range []float64{1, 2, 3, 50, 60} {
		tree.Insert(hyperdom.Item{
			Sphere: hyperdom.NewSphere([]float64{x}, 0.5),
			ID:     i,
		})
	}
	query := hyperdom.NewSphere([]float64{0}, 0.5)
	res := hyperdom.KNN(tree, query, 2, hyperdom.Hyperbola(), hyperdom.BestFirst)
	fmt.Println(res.IDs())
	// Output:
	// [0 1 2]
}

// How long a pruning decision survives growing uncertainty.
func ExampleDominanceHorizon() {
	sa := hyperdom.NewSphere([]float64{-1, 0}, 0) // point objects:
	sb := hyperdom.NewSphere([]float64{1, 0}, 0)  // boundary is the plane x = 0
	sq := hyperdom.NewSphere([]float64{-5, 0}, 1) // dmin = 5, slack = 4
	// Only the query radius grows, 2 units per time step.
	fmt.Printf("%.1f\n", hyperdom.DominanceHorizon(sa, sb, sq, 0, 0, 2, 100))
	// Output:
	// 2.0
}

// The ranks an uncertain object can take among its peers.
func ExampleInverseRank() {
	var items []hyperdom.Item
	for i, x := range []float64{1, 2, 4, 8} {
		items = append(items, hyperdom.Item{
			Sphere: hyperdom.NewSphere([]float64{x, 0}, 0),
			ID:     i,
		})
	}
	anchor := hyperdom.NewSphere([]float64{0, 0}, 0)
	query := hyperdom.NewSphere([]float64{3, 0}, 1.5)
	res := hyperdom.InverseRank(items, query, anchor, hyperdom.Exact())
	fmt.Println(res.Ranks)
	// Output:
	// [2, 4]
}
